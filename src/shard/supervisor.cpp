#include "finser/shard/supervisor.hpp"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "finser/exec/exec.hpp"
#include "finser/obs/obs.hpp"
#include "finser/pipeline/artifact_store.hpp"
#include "finser/shard/lease.hpp"
#include "finser/util/error.hpp"

namespace finser::shard {

namespace {

using Clock = std::chrono::steady_clock;

double seconds_since(Clock::time_point t) {
  return std::chrono::duration<double>(Clock::now() - t).count();
}

/// Terminal + transient states of one plan stage in the scheduler.
enum class StageState {
  kPending,      // waiting for deps / backoff / a free worker
  kAssigned,     // handed to a worker, not yet terminal
  kCompleted,
  kQuarantined,  // failed max_retries + 1 attempts
  kBlocked,      // a dependency is quarantined/blocked, or no workers left
};

struct StageBook {
  StageState state = StageState::kPending;
  std::size_t attempts = 0;        // attempts started so far
  Clock::time_point eligible_at;   // backoff gate (valid when kPending)
  std::string last_error;
};

struct WorkerBook {
  pid_t pid = -1;
  bool alive = false;
  long stage = -1;                 // assigned plan index, -1 = idle
  std::uint64_t attempt = 0;       // attempt ordinal of that assignment
  bool acked = false;              // running-heartbeat for it observed
  std::uint64_t task_seq = 0;      // task records written to this slot
  std::uint64_t hb_seq = 0;        // last heartbeat seq observed
  Clock::time_point last_hb;       // last liveness evidence
  Clock::time_point assigned_at;
  Clock::time_point task_written_at;
  std::string kill_reason;         // set before a deliberate SIGKILL
  std::size_t respawns = 0;
};

std::string exit_description(int wstatus) {
  if (WIFSIGNALED(wstatus)) {
    return "worker died (signal " + std::to_string(WTERMSIG(wstatus)) + ")";
  }
  if (WIFEXITED(wstatus)) {
    return "worker exited (code " + std::to_string(WEXITSTATUS(wstatus)) +
           ")";
  }
  return "worker died";
}

/// fork + exec one worker. Replacement workers get FINSER_FAULT stripped in
/// the child: a one-shot fault (worker_kill_after_claim:1) must prove
/// *recovery*, not kill every successor forever. FINSER_SHARD_POISON stays
/// inherited — it exists to crash every attempt of one stage.
pid_t spawn_worker(const std::string& cli, const ShardConfig& config,
                   const std::string& artifact_dir,
                   const std::string& lease_dir, std::size_t worker_id,
                   std::size_t threads, bool replacement) {
  std::vector<std::string> args = {
      cli,
      "worker",
      config.campaign_path,
      "--worker-id",
      std::to_string(worker_id),
      "--lease-dir",
      lease_dir,
      "--artifact-dir",
      artifact_dir,
      "--threads",
      std::to_string(threads),
  };
  if (config.lanes != 0) {
    args.push_back("--lanes");
    args.push_back(std::to_string(config.lanes));
  }

  const pid_t pid = ::fork();
  if (pid < 0) return -1;
  if (pid == 0) {
    if (replacement) ::unsetenv("FINSER_FAULT");
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (std::string& a : args) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(cli.c_str(), argv.data());
    ::_exit(127);  // exec failed; supervisor sees a normal worker death
  }
  return pid;
}

void remove_control_files(const std::string& lease_dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(lease_dir, ec);
  if (ec) return;
  for (const auto& entry : it) {
    const std::string name = entry.path().filename().string();
    if (name.rfind("task-", 0) == 0 || name.rfind("hb-", 0) == 0) {
      std::error_code rm_ec;
      std::filesystem::remove(entry.path(), rm_ec);
    }
  }
}

}  // namespace

ShardResult run_sharded_campaign(const pipeline::CampaignSpec& spec,
                                 const ShardConfig& config,
                                 const exec::CancelToken* cancel,
                                 const exec::ProgressSink& progress) {
  FINSER_REQUIRE(config.workers >= 1, "shard: workers must be >= 1");
  FINSER_REQUIRE(!config.campaign_path.empty(),
                 "shard: campaign_path is required (workers re-read it)");

  // Workers ship stage products through the artifact store, so one is
  // mandatory: default it under the output dir when the spec has none.
  pipeline::CampaignSpec resolved = spec;
  if (resolved.artifact_dir.empty()) {
    FINSER_REQUIRE(!resolved.output_dir.empty(),
                   "shard: campaign needs artifact_dir or output_dir "
                   "(workers exchange stage products through the store)");
    resolved.artifact_dir = resolved.output_dir + "/artifacts";
  }
  const std::string artifact_dir = resolved.artifact_dir;
  const std::string lease_dir = artifact_dir + "/leases";
  std::error_code ec;
  std::filesystem::create_directories(lease_dir, ec);
  FINSER_REQUIRE(!ec, "shard: cannot create lease dir " + lease_dir + ": " +
                          ec.message());

  // Startup hygiene: sweep atomic-write debris from both directories, then
  // clear stale control files. Done markers survive — they are the resume
  // record (stale-campaign ones are rejected by fingerprint on read).
  pipeline::ArtifactStore::sweep_orphans(artifact_dir);
  pipeline::ArtifactStore::sweep_orphans(lease_dir);
  remove_control_files(lease_dir);

  const std::uint64_t campaign = pipeline::campaign_fingerprint(resolved);
  pipeline::CampaignRunner planner(resolved);
  const std::vector<pipeline::StageInfo>& plan = planner.plan();

  ShardResult result;
  result.stages_total = plan.size();

  std::vector<StageBook> stages(plan.size());
  const Clock::time_point start = Clock::now();
  for (StageBook& s : stages) s.eligible_at = start;

  // Resume: a valid done marker from this exact campaign completes the
  // stage before any worker spawns.
  for (std::size_t i = 0; i < plan.size(); ++i) {
    LeaseRecord done;
    if (try_read_lease(done_path(lease_dir, plan[i].id), campaign, done) &&
        done.kind == LeaseKind::kDone && done.stage == plan[i].id) {
      stages[i].state = StageState::kCompleted;
      result.stages_resumed += 1;
    }
  }
  if (result.stages_resumed > 0) {
    progress.message("shard: resumed " +
                     std::to_string(result.stages_resumed) + "/" +
                     std::to_string(plan.size()) +
                     " stages from done markers");
  }

  const std::string cli =
      config.cli_path.empty() ? "/proc/self/exe" : config.cli_path;
  const std::size_t worker_threads =
      config.worker_threads != 0
          ? config.worker_threads
          : std::max<std::size_t>(
                1, exec::resolve_threads(resolved.threads) / config.workers);

  // A runaway crash loop (exec always failing, a poisoned stage killing
  // every visitor) must converge: cap total respawns well above what any
  // legitimate retry schedule needs.
  const std::size_t respawn_budget =
      (config.max_retries + 1) * plan.size() + 2 * config.workers + 8;
  std::size_t respawns_used = 0;

  std::vector<WorkerBook> workers(config.workers);
  const auto spawn_slot = [&](std::size_t w, bool replacement) -> bool {
    // Clear the slot's control files so the newcomer cannot read its
    // predecessor's assignment or have its fresh heartbeat shadowed.
    std::error_code rm_ec;
    std::filesystem::remove(task_path(lease_dir, w), rm_ec);
    std::filesystem::remove(heartbeat_path(lease_dir, w), rm_ec);
    const pid_t pid = spawn_worker(cli, config, artifact_dir, lease_dir, w,
                                   worker_threads, replacement);
    if (pid < 0) return false;
    WorkerBook& book = workers[w];
    const std::size_t keep_respawns = book.respawns;
    book = WorkerBook{};
    book.respawns = keep_respawns;
    book.pid = pid;
    book.alive = true;
    book.last_hb = Clock::now();
    exec::signal_fanout_add(pid);
    return true;
  };

  const auto reap_all = [&](bool force) {
    for (WorkerBook& w : workers) {
      if (!w.alive) continue;
      if (force) ::kill(w.pid, SIGKILL);
      int status = 0;
      ::waitpid(w.pid, &status, 0);
      exec::signal_fanout_remove(w.pid);
      w.alive = false;
    }
  };

  for (std::size_t w = 0; w < config.workers; ++w) {
    if (!spawn_slot(w, /*replacement=*/false)) {
      reap_all(/*force=*/true);
      throw util::Error("shard: cannot spawn worker " + std::to_string(w));
    }
  }
  progress.message("shard: supervising " + std::to_string(config.workers) +
                   " workers over " + std::to_string(plan.size()) +
                   " stages");

  // --- stage bookkeeping helpers -------------------------------------------

  // One attempt of stage s ended without completing (worker death, timeout
  // or reported failure): retry with exponential backoff, or quarantine.
  const auto attempt_failed = [&](std::size_t s, const std::string& reason) {
    StageBook& book = stages[s];
    book.last_error = reason;
    if (book.attempts > config.max_retries) {
      book.state = StageState::kQuarantined;
      FINSER_OBS_COUNT("shard.quarantines", 1);
      progress.message("shard: stage " + plan[s].id + " quarantined after " +
                       std::to_string(book.attempts) +
                       " attempts: " + reason);
      return;
    }
    const double backoff = std::min(
        config.backoff_max_s,
        config.backoff_base_s *
            std::pow(2.0, static_cast<double>(book.attempts) - 1.0));
    book.state = StageState::kPending;
    book.eligible_at =
        Clock::now() + std::chrono::duration_cast<Clock::duration>(
                           std::chrono::duration<double>(backoff));
    FINSER_OBS_COUNT("shard.retries", 1);
    progress.message("shard: stage " + plan[s].id + " will retry (" +
                     reason + ")");
  };

  const auto release_worker_stage = [&](WorkerBook& w,
                                        const std::string& reason) {
    if (w.stage < 0) return;
    FINSER_OBS_COUNT("shard.reassigns", 1);
    const std::size_t s = static_cast<std::size_t>(w.stage);
    w.stage = -1;
    if (stages[s].state == StageState::kAssigned) attempt_failed(s, reason);
  };

  // --- supervision loop ----------------------------------------------------

  bool cancelled = false;
  for (;;) {
    if (cancel != nullptr && cancel->cancelled()) {
      cancelled = true;
      break;
    }
    const Clock::time_point now = Clock::now();

    // 1. Reap deaths. A dead worker's assignment is reclaimed and the slot
    // is respawned (without re-arming FINSER_FAULT) while budget lasts.
    for (std::size_t w = 0; w < workers.size(); ++w) {
      WorkerBook& book = workers[w];
      if (!book.alive) continue;
      int status = 0;
      const pid_t reaped = ::waitpid(book.pid, &status, WNOHANG);
      if (reaped != book.pid) continue;
      exec::signal_fanout_remove(book.pid);
      book.alive = false;
      FINSER_OBS_COUNT("shard.worker_deaths", 1);
      const std::string reason = book.kill_reason.empty()
                                     ? exit_description(status)
                                     : book.kill_reason;
      progress.message("shard: worker " + std::to_string(w) + " down: " +
                       reason);
      release_worker_stage(book, reason);
      if (respawns_used < respawn_budget) {
        ++respawns_used;
        ++book.respawns;
        if (!spawn_slot(w, /*replacement=*/true)) book.alive = false;
      }
    }

    // 2. Heartbeats: liveness, claim acks, completions, failures.
    for (std::size_t w = 0; w < workers.size(); ++w) {
      WorkerBook& book = workers[w];
      if (!book.alive) continue;
      LeaseRecord hb;
      if (!try_read_lease(heartbeat_path(lease_dir, w), campaign, hb) ||
          hb.kind != LeaseKind::kHeartbeat) {
        continue;
      }
      if (hb.seq != book.hb_seq) {
        if (book.hb_seq != 0) {
          FINSER_OBS_RECORD(
              "shard.heartbeat_ms",
              static_cast<std::int64_t>(seconds_since(book.last_hb) * 1e3));
        }
        book.hb_seq = hb.seq;
        book.last_hb = now;
      }
      if (book.stage < 0) continue;
      const std::size_t s = static_cast<std::size_t>(book.stage);
      if (hb.stage != plan[s].id || hb.attempt != book.attempt) continue;
      switch (hb.state) {
        case LeaseState::kRunning:
          book.acked = true;
          break;
        case LeaseState::kDone:
          stages[s].state = StageState::kCompleted;
          result.stages_completed += 1;
          book.stage = -1;
          progress.message("shard: stage " + plan[s].id + " completed by "
                           "worker " + std::to_string(w));
          break;
        case LeaseState::kFailed: {
          const std::size_t failed = s;
          book.stage = -1;
          attempt_failed(failed, hb.message.empty() ? "stage failed"
                                                    : hb.message);
          break;
        }
        default:
          break;
      }
    }

    // 3. Timeouts: a silent worker and an over-budget stage are the same
    // pathology from the campaign's point of view — kill and reassign.
    for (std::size_t w = 0; w < workers.size(); ++w) {
      WorkerBook& book = workers[w];
      if (!book.alive || !book.kill_reason.empty()) continue;
      if (config.heartbeat_timeout_s > 0.0 &&
          seconds_since(book.last_hb) > config.heartbeat_timeout_s) {
        book.kill_reason = "heartbeat timeout (" +
                           std::to_string(config.heartbeat_timeout_s) + " s)";
        ::kill(book.pid, SIGKILL);
        continue;
      }
      if (config.stage_timeout_s > 0.0 && book.stage >= 0 &&
          seconds_since(book.assigned_at) > config.stage_timeout_s) {
        book.kill_reason = "stage timeout (" +
                           std::to_string(config.stage_timeout_s) + " s)";
        FINSER_OBS_COUNT("shard.stage_timeouts", 1);
        ::kill(book.pid, SIGKILL);
      }
    }

    // 4. Heal un-acked task files: if the assignment write was torn
    // (lease_torn drill) the worker reads nothing — rewrite after an ack
    // window. Same (stage, attempt), so a worker that *did* see the first
    // copy dedupes the rewrite.
    for (std::size_t w = 0; w < workers.size(); ++w) {
      WorkerBook& book = workers[w];
      if (!book.alive || book.stage < 0 || book.acked) continue;
      const double window = std::max(0.25, 4.0 * config.poll_period_s);
      if (seconds_since(book.task_written_at) < window) continue;
      LeaseRecord task;
      task.kind = LeaseKind::kTask;
      task.state = LeaseState::kAssign;
      task.campaign = campaign;
      task.worker = w;
      task.attempt = book.attempt;
      task.seq = ++book.task_seq;
      task.stage = plan[static_cast<std::size_t>(book.stage)].id;
      write_lease(task_path(lease_dir, w), task);
      book.task_written_at = Clock::now();
      FINSER_OBS_COUNT("shard.task_rewrites", 1);
    }

    // 5. Cascade blocking: a stage whose dependency can never complete is
    // terminal too (recorded, so the report explains every missing CSV).
    for (std::size_t s = 0; s < plan.size(); ++s) {
      if (stages[s].state != StageState::kPending) continue;
      for (std::size_t d : plan[s].deps) {
        if (stages[d].state == StageState::kQuarantined ||
            stages[d].state == StageState::kBlocked) {
          stages[s].state = StageState::kBlocked;
          stages[s].last_error =
              "dependency " + plan[d].id + " did not complete";
          break;
        }
      }
    }

    // 6. Assign ready stages to idle workers, both in deterministic order.
    for (std::size_t w = 0; w < workers.size(); ++w) {
      WorkerBook& book = workers[w];
      if (!book.alive || book.stage >= 0 || !book.kill_reason.empty()) {
        continue;
      }
      long pick = -1;
      for (std::size_t s = 0; s < plan.size(); ++s) {
        if (stages[s].state != StageState::kPending) continue;
        if (now < stages[s].eligible_at) continue;
        bool ready = true;
        for (std::size_t d : plan[s].deps) {
          if (stages[d].state != StageState::kCompleted) ready = false;
        }
        if (ready) {
          pick = static_cast<long>(s);
          break;
        }
      }
      if (pick < 0) break;  // nothing ready; later workers see the same plan
      const std::size_t s = static_cast<std::size_t>(pick);
      StageBook& stage = stages[s];
      stage.state = StageState::kAssigned;
      stage.attempts += 1;
      book.stage = pick;
      book.attempt = stage.attempts;
      book.acked = false;
      book.assigned_at = now;
      book.last_hb = now;  // fresh timeout window for the new assignment
      LeaseRecord task;
      task.kind = LeaseKind::kTask;
      task.state = LeaseState::kAssign;
      task.campaign = campaign;
      task.worker = w;
      task.attempt = book.attempt;
      task.seq = ++book.task_seq;
      task.stage = plan[s].id;
      write_lease(task_path(lease_dir, w), task);
      book.task_written_at = Clock::now();
      FINSER_OBS_COUNT("shard.claims", 1);
      progress.message("shard: stage " + plan[s].id + " -> worker " +
                       std::to_string(w) +
                       (book.attempt > 1
                            ? " (attempt " + std::to_string(book.attempt) + ")"
                            : ""));
    }

    // 7. Termination: every stage terminal, or nobody left to run them.
    const bool all_terminal = std::all_of(
        stages.begin(), stages.end(), [](const StageBook& s) {
          return s.state == StageState::kCompleted ||
                 s.state == StageState::kQuarantined ||
                 s.state == StageState::kBlocked;
        });
    if (all_terminal) break;
    const bool any_alive = std::any_of(
        workers.begin(), workers.end(),
        [](const WorkerBook& w) { return w.alive; });
    if (!any_alive && respawns_used >= respawn_budget) {
      for (std::size_t s = 0; s < plan.size(); ++s) {
        if (stages[s].state == StageState::kPending ||
            stages[s].state == StageState::kAssigned) {
          stages[s].state = StageState::kBlocked;
          stages[s].last_error = "no workers left (respawn budget exhausted)";
        }
      }
      break;
    }

    std::this_thread::sleep_for(
        std::chrono::duration<double>(std::max(0.005, config.poll_period_s)));
  }

  // --- shutdown ------------------------------------------------------------

  if (cancelled) {
    for (WorkerBook& w : workers) {
      if (w.alive) ::kill(w.pid, SIGTERM);
    }
    reap_all(/*force=*/false);
    throw util::Cancelled("shard: campaign cancelled");
  }

  for (std::size_t w = 0; w < workers.size(); ++w) {
    WorkerBook& book = workers[w];
    if (!book.alive) continue;
    LeaseRecord task;
    task.kind = LeaseKind::kTask;
    task.state = LeaseState::kShutdown;
    task.campaign = campaign;
    task.worker = w;
    task.seq = ++book.task_seq;
    write_lease(task_path(lease_dir, w), task);
  }
  // Give workers one poll period to exit cleanly, then escalate.
  const Clock::time_point shutdown_start = Clock::now();
  for (;;) {
    bool any = false;
    for (WorkerBook& w : workers) {
      if (!w.alive) continue;
      int status = 0;
      if (::waitpid(w.pid, &status, WNOHANG) == w.pid) {
        exec::signal_fanout_remove(w.pid);
        w.alive = false;
      } else {
        any = true;
      }
    }
    if (!any) break;
    if (seconds_since(shutdown_start) > 5.0) {
      reap_all(/*force=*/true);
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }

  // --- outcome -------------------------------------------------------------

  for (std::size_t s = 0; s < plan.size(); ++s) {
    const StageBook& book = stages[s];
    if (book.state == StageState::kCompleted) continue;
    StageFailure failure;
    failure.id = plan[s].id;
    failure.label = plan[s].label;
    failure.attempts = book.attempts;
    failure.status =
        book.state == StageState::kQuarantined ? "quarantined" : "blocked";
    failure.reason = book.last_error;
    result.failures.push_back(std::move(failure));
  }
  result.stages_completed = 0;
  for (const StageBook& s : stages) {
    if (s.state == StageState::kCompleted) result.stages_completed += 1;
  }
  if (result.failures.empty()) {
    result.outcome = ShardOutcome::kComplete;
  } else if (result.stages_completed > 0) {
    result.outcome = ShardOutcome::kPartial;
  } else {
    result.outcome = ShardOutcome::kFailed;
  }
  return result;
}

util::JsonValue shard_report_json(const ShardResult& result,
                                  const ShardConfig& config) {
  util::JsonValue doc = util::JsonValue::object();
  doc["workers"] = static_cast<std::uint64_t>(config.workers);
  doc["max_retries"] = static_cast<std::uint64_t>(config.max_retries);
  doc["stage_timeout_s"] = config.stage_timeout_s;
  switch (result.outcome) {
    case ShardOutcome::kComplete:
      doc["outcome"] = std::string("complete");
      break;
    case ShardOutcome::kPartial:
      doc["outcome"] = std::string("partial");
      break;
    case ShardOutcome::kFailed:
      doc["outcome"] = std::string("failed");
      break;
  }
  doc["stages_total"] = static_cast<std::uint64_t>(result.stages_total);
  doc["stages_completed"] =
      static_cast<std::uint64_t>(result.stages_completed);
  doc["stages_resumed"] = static_cast<std::uint64_t>(result.stages_resumed);
  util::JsonValue failures = util::JsonValue::array();
  for (const StageFailure& f : result.failures) {
    util::JsonValue o = util::JsonValue::object();
    o["id"] = f.id;
    o["label"] = f.label;
    o["attempts"] = static_cast<std::uint64_t>(f.attempts);
    o["status"] = f.status;
    o["reason"] = f.reason;
    failures.push_back(std::move(o));
  }
  doc["failures"] = std::move(failures);
  return doc;
}

}  // namespace finser::shard
