#include "finser/stats/histogram.hpp"

#include <cmath>

#include "finser/util/error.hpp"

namespace finser::stats {

Histogram::Histogram(double lo, double hi, std::size_t bins, Binning binning)
    : lo_(lo), hi_(hi), binning_(binning), counts_(bins, 0.0) {
  FINSER_REQUIRE(bins > 0, "Histogram: need at least one bin");
  FINSER_REQUIRE(hi > lo, "Histogram: hi <= lo");
  if (binning_ == Binning::kLog) {
    FINSER_REQUIRE(lo > 0.0, "Histogram: log binning requires lo > 0");
    tlo_ = std::log(lo_);
    thi_ = std::log(hi_);
  } else {
    tlo_ = lo_;
    thi_ = hi_;
  }
}

void Histogram::add(double x, double weight) {
  if (x < lo_ || (binning_ == Binning::kLog && x <= 0.0)) {
    underflow_ += weight;
    return;
  }
  if (x >= hi_) {
    overflow_ += weight;
    return;
  }
  const double t = binning_ == Binning::kLog ? std::log(x) : x;
  const double f = (t - tlo_) / (thi_ - tlo_);
  auto i = static_cast<std::size_t>(f * static_cast<double>(counts_.size()));
  if (i >= counts_.size()) i = counts_.size() - 1;  // FP edge guard.
  counts_[i] += weight;
}

double Histogram::bin_lo(std::size_t i) const {
  FINSER_REQUIRE(i < counts_.size(), "Histogram: bin index out of range");
  const double t = tlo_ + (thi_ - tlo_) * static_cast<double>(i) /
                              static_cast<double>(counts_.size());
  return binning_ == Binning::kLog ? std::exp(t) : t;
}

double Histogram::bin_hi(std::size_t i) const {
  FINSER_REQUIRE(i < counts_.size(), "Histogram: bin index out of range");
  const double t = tlo_ + (thi_ - tlo_) * static_cast<double>(i + 1) /
                              static_cast<double>(counts_.size());
  return binning_ == Binning::kLog ? std::exp(t) : t;
}

double Histogram::bin_center(std::size_t i) const {
  if (binning_ == Binning::kLog) return std::sqrt(bin_lo(i) * bin_hi(i));
  return 0.5 * (bin_lo(i) + bin_hi(i));
}

double Histogram::total() const {
  double t = 0.0;
  for (double c : counts_) t += c;
  return t;
}

double Histogram::density(std::size_t i) const {
  const double t = total();
  if (t <= 0.0) return 0.0;
  return count(i) / (t * bin_width(i));
}

}  // namespace finser::stats
