#include "finser/stats/rng.hpp"

#include <cmath>

#include "finser/util/error.hpp"

namespace finser::stats {

namespace {

/// SplitMix64 step: used only for seeding (Vigna's recommendation).
std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9E3779B97F4A7C15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& w : s_) w = splitmix64(sm);
  // Guard against the (astronomically unlikely) all-zero state.
  if ((s_[0] | s_[1] | s_[2] | s_[3]) == 0) s_[0] = 1;
}

Rng::result_type Rng::operator()() {
  const std::uint64_t result = rotl(s_[0] + s_[3], 23) + s_[0];
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

double Rng::uniform() {
  // 53-bit mantissa construction => uniform on [0, 1).
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  FINSER_REQUIRE(hi >= lo, "Rng::uniform: hi < lo");
  return lo + (hi - lo) * uniform();
}

std::uint64_t Rng::uniform_index(std::uint64_t n) {
  FINSER_REQUIRE(n > 0, "Rng::uniform_index: n must be positive");
  // Lemire's nearly-divisionless method with rejection.
  std::uint64_t x = (*this)();
  unsigned __int128 m = static_cast<unsigned __int128>(x) * n;
  std::uint64_t l = static_cast<std::uint64_t>(m);
  if (l < n) {
    const std::uint64_t t = (0 - n) % n;
    while (l < t) {
      x = (*this)();
      m = static_cast<unsigned __int128>(x) * n;
      l = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  // Marsaglia polar method.
  double u, v, s;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double f = std::sqrt(-2.0 * std::log(s) / s);
  cached_normal_ = v * f;
  has_cached_normal_ = true;
  return u * f;
}

double Rng::normal(double mu, double sigma) {
  FINSER_REQUIRE(sigma >= 0.0, "Rng::normal: negative sigma");
  return mu + sigma * normal();
}

double Rng::exponential(double lambda) {
  FINSER_REQUIRE(lambda > 0.0, "Rng::exponential: lambda must be positive");
  double u;
  do {
    u = uniform();
  } while (u == 0.0);
  return -std::log(u) / lambda;
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform() < p;
}

Rng Rng::split() { return Rng((*this)()); }

std::uint64_t Rng::derive_seed(std::uint64_t root_seed,
                               std::uint64_t stream_id) {
  // Mix the root once so nearby user seeds land far apart, then index the
  // SplitMix64 sequence starting there by the stream counter. SplitMix64 is
  // an invertible mix of a Weyl sequence, so distinct (root, stream) pairs
  // with the same root always yield distinct sub-seeds.
  std::uint64_t x = root_seed;
  std::uint64_t cursor = splitmix64(x) + stream_id * 0x9E3779B97F4A7C15ull;
  return splitmix64(cursor);
}

Rng Rng::stream(std::uint64_t root_seed, std::uint64_t stream_id) {
  return Rng(derive_seed(root_seed, stream_id));
}

}  // namespace finser::stats
