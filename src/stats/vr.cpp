#include "finser/stats/vr.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "finser/stats/direction.hpp"
#include "finser/util/error.hpp"

namespace finser::stats {

// --- Stopping schedule ------------------------------------------------------

double relative_halfwidth(double mean, double se) {
  if (mean <= 0.0) return 0.0;
  return kZ95 * se / mean;
}

// --- FocusPlane -------------------------------------------------------------

FocusPlane::FocusPlane(double x_lo, double x_hi, double y_lo, double y_hi,
                       std::vector<FocusBox> boxes, double alpha)
    : x_lo_(x_lo), x_hi_(x_hi), y_lo_(y_lo), y_hi_(y_hi),
      plane_area_((x_hi - x_lo) * (y_hi - y_lo)), alpha_(alpha) {
  FINSER_REQUIRE(x_hi > x_lo && y_hi > y_lo, "FocusPlane: degenerate plane");
  FINSER_REQUIRE(alpha >= 0.0 && alpha < 1.0,
                 "FocusPlane: focus fraction must be in [0, 1)");
  boxes_.reserve(boxes.size());
  for (FocusBox b : boxes) {
    b.x_lo = std::max(b.x_lo, x_lo_);
    b.x_hi = std::min(b.x_hi, x_hi_);
    b.y_lo = std::max(b.y_lo, y_lo_);
    b.y_hi = std::min(b.y_hi, y_hi_);
    if (b.x_hi <= b.x_lo || b.y_hi <= b.y_lo) continue;  // Off-plane box.
    boxes_.push_back(b);
    focus_area_ += b.area();
    cum_area_.push_back(focus_area_);
  }
  if (boxes_.empty() || focus_area_ <= 0.0) alpha_ = 0.0;
}

FocusPlane::Sample FocusPlane::sample(double u_select, double u_x,
                                      double u_y) const {
  Sample s;
  if (u_select < alpha_) {
    // Focus branch: area-weighted box via the rescaled selector uniform —
    // the standard reuse that lets one QMC dimension drive branch + box.
    const double target = (u_select / alpha_) * focus_area_;
    const auto it = std::upper_bound(cum_area_.begin(), cum_area_.end(), target);
    const std::size_t idx = std::min<std::size_t>(
        static_cast<std::size_t>(it - cum_area_.begin()), boxes_.size() - 1);
    const FocusBox& b = boxes_[idx];
    s.x = b.x_lo + (b.x_hi - b.x_lo) * u_x;
    s.y = b.y_lo + (b.y_hi - b.y_lo) * u_y;
    s.focused = true;
  } else {
    s.x = x_lo_ + (x_hi_ - x_lo_) * u_x;
    s.y = y_lo_ + (y_hi_ - y_lo_) * u_y;
  }
  s.weight = weight(s.x, s.y);
  return s;
}

double FocusPlane::pdf(double x, double y) const {
  if (x < x_lo_ || x > x_hi_ || y < y_lo_ || y > y_hi_) return 0.0;
  double q = (1.0 - alpha_) / plane_area_;
  if (alpha_ > 0.0) {
    std::size_t cover = 0;
    for (const FocusBox& b : boxes_) {
      if (b.contains(x, y)) ++cover;
    }
    if (cover > 0) {
      q += alpha_ * static_cast<double>(cover) / focus_area_;
    }
  }
  return q;
}

double FocusPlane::weight(double x, double y) const {
  const double q = pdf(x, y);
  if (q <= 0.0) return 0.0;  // Off-plane points carry no mass.
  return (1.0 / plane_area_) / q;
}

// --- Direction mixture ------------------------------------------------------

DirectionSample biased_hemisphere_down(Rng& rng, double beta) {
  FINSER_REQUIRE(beta >= 0.0 && beta < 1.0,
                 "biased_hemisphere_down: bias must be in [0, 1)");
  DirectionSample s;
  if (beta > 0.0 && rng.uniform() < beta) {
    s.dir = cosine_hemisphere_down(rng);
  } else {
    s.dir = isotropic_hemisphere_down(rng);
  }
  // p_iso = 1/(2pi); q = beta*|z|/pi + (1-beta)/(2pi).
  s.weight = 1.0 / (2.0 * beta * std::abs(s.dir.z) + (1.0 - beta));
  return s;
}

DirectionSample grazing_hemisphere_down(Rng& rng, double delta) {
  FINSER_REQUIRE(delta >= 0.0 && delta < 1.0,
                 "grazing_hemisphere_down: bias must be in [0, 1)");
  DirectionSample s;
  if (delta == 0.0) {
    s.dir = isotropic_hemisphere_down(rng);
    return s;  // Weight identically 1 — bitwise the isotropic sampler.
  }
  // Grazing component: |z| ~ C / (|z| + z0) on (0, 1], C = 1 / ln(1 + 1/z0).
  // The POF second moment per direction grows like 1/|z|^2 toward grazing
  // incidence until tracks out-range the array (around |z| ~ z0), so the
  // variance-optimal proposal ~ sqrt(E[X^2 | z]) is ~ 1/|z| above z0 and
  // flat below — exactly this family's shape.
  const double log_span = std::log1p(1.0 / kGrazingZ0);
  if (rng.uniform() < delta) {
    // Inverse CDF: z = z0 * (exp(u * ln(1 + 1/z0)) - 1).
    const double u = rng.uniform();
    const double z = std::min(1.0, kGrazingZ0 * std::expm1(u * log_span));
    const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
    const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
    s.dir = {r * std::cos(phi), r * std::sin(phi), -z};
  } else {
    s.dir = isotropic_hemisphere_down(rng);
  }
  // Under the isotropic hemisphere law |z| is uniform on [0, 1], so
  // q(|z|) = delta * C / (|z| + z0) + (1 - delta) and w = 1 / q, bounded
  // by 1 / (1 - delta).
  const double az = std::abs(s.dir.z);
  const double q = delta / ((az + kGrazingZ0) * log_span) + (1.0 - delta);
  s.weight = 1.0 / q;
  return s;
}

// --- Scrambled Sobol --------------------------------------------------------

namespace {

/// Primitive polynomials + Joe–Kuo initial direction numbers for Sobol
/// dimensions 2..4 (dimension 1 is the van der Corput radical inverse).
/// a encodes the inner polynomial coefficient bits, m the initial m_k.
struct SobolPoly {
  unsigned s;       ///< Degree.
  unsigned a;       ///< Coefficient bits a_1..a_{s-1}.
  unsigned m[3];    ///< Initial direction integers m_1..m_s (odd).
};

constexpr SobolPoly kPolys[3] = {
    {1, 0, {1, 0, 0}},
    {2, 1, {1, 3, 0}},
    {3, 1, {1, 3, 1}},
};

}  // namespace

SobolSequence::SobolSequence(std::uint64_t scramble_seed) {
  // Dimension 0: van der Corput, v_k = 2^(32-k).
  for (std::size_t k = 0; k < kBits; ++k) {
    dirs_[0][k] = 1u << (31 - k);
  }
  for (std::size_t d = 1; d < kDims; ++d) {
    const SobolPoly& p = kPolys[d - 1];
    std::uint32_t m[kBits];
    for (unsigned k = 0; k < p.s; ++k) m[k] = p.m[k];
    for (std::size_t k = p.s; k < kBits; ++k) {
      // m_k = XOR_{i=1}^{s-1} (2^i a_i m_{k-i}) ^ (2^s m_{k-s}) ^ m_{k-s}.
      std::uint32_t v = m[k - p.s] ^ (m[k - p.s] << p.s);
      for (unsigned i = 1; i < p.s; ++i) {
        if ((p.a >> (p.s - 1 - i)) & 1u) v ^= m[k - i] << i;
      }
      m[k] = v;
    }
    for (std::size_t k = 0; k < kBits; ++k) {
      dirs_[d][k] = m[k] << (31 - k);
    }
  }
  // Per-dimension digital shift: one decorrelated 32-bit word per dimension,
  // derived through the same counter-based interface the RNG streams use.
  for (std::size_t d = 0; d < kDims; ++d) {
    shift_[d] = static_cast<std::uint32_t>(
        Rng::derive_seed(scramble_seed, static_cast<std::uint64_t>(d)) >> 32);
  }
}

double SobolSequence::point(std::uint64_t index, std::size_t dim) const {
  FINSER_REQUIRE(dim < kDims, "SobolSequence: dimension out of range");
  // Gray-code formula: x_n = XOR of v_k over the set bits of n ^ (n >> 1).
  std::uint64_t gray = index ^ (index >> 1);
  std::uint32_t x = 0;
  for (std::size_t k = 0; k < kBits && gray != 0; ++k, gray >>= 1) {
    if (gray & 1u) x ^= dirs_[dim][k];
  }
  x ^= shift_[dim];
  return static_cast<double>(x) * 0x1p-32;
}

}  // namespace finser::stats
