#include "finser/stats/summary.hpp"

#include <algorithm>
#include <cmath>

#include "finser/util/error.hpp"

namespace finser::stats {

void RunningStats::add(double x) {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

double RunningStats::stderr_of_mean() const {
  if (n_ < 2) return 0.0;
  return stddev() / std::sqrt(static_cast<double>(n_));
}

void WeightedRunningStats::add(double x, double w) {
  FINSER_REQUIRE(w >= 0.0 && std::isfinite(w),
                 "WeightedRunningStats: weight must be finite and >= 0");
  ++n_;
  if (w == 0.0) return;  // Counted, no moment mass.
  sum_w_ += w;
  sum_w2_ += w * w;
  const double delta = x - mean_;
  mean_ += (w / sum_w_) * delta;
  m2_ += w * delta * (x - mean_);
}

void WeightedRunningStats::merge(const WeightedRunningStats& other) {
  n_ += other.n_;
  if (other.sum_w_ <= 0.0) return;
  if (sum_w_ <= 0.0) {
    sum_w_ = other.sum_w_;
    sum_w2_ = other.sum_w2_;
    mean_ = other.mean_;
    m2_ = other.m2_;
    return;
  }
  const double wa = sum_w_;
  const double wb = other.sum_w_;
  const double wt = wa + wb;
  const double delta = other.mean_ - mean_;
  mean_ += delta * wb / wt;
  m2_ += other.m2_ + delta * delta * wa * wb / wt;
  sum_w_ = wt;
  sum_w2_ += other.sum_w2_;
}

double WeightedRunningStats::ess() const {
  if (sum_w2_ <= 0.0) return 0.0;
  return sum_w_ * sum_w_ / sum_w2_;
}

double WeightedRunningStats::variance() const {
  // Reliability-weight form: unbiased denominator Σw − Σw²/Σw.
  const double denom = sum_w_ - (sum_w_ > 0.0 ? sum_w2_ / sum_w_ : 0.0);
  if (denom <= 0.0) return 0.0;
  return m2_ / denom;
}

double WeightedRunningStats::stderr_of_mean() const {
  const double e = ess();
  if (e <= 1.0) return 0.0;
  return std::sqrt(variance() / e);
}

}  // namespace finser::stats
