#include "finser/stats/direction.hpp"

#include <cmath>
#include <numbers>

namespace finser::stats {

using geom::Vec3;

Vec3 isotropic_sphere(Rng& rng) {
  // Archimedes: z uniform in [-1, 1], azimuth uniform.
  const double z = rng.uniform(-1.0, 1.0);
  const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double r = std::sqrt(std::max(0.0, 1.0 - z * z));
  return {r * std::cos(phi), r * std::sin(phi), z};
}

Vec3 isotropic_hemisphere_down(Rng& rng) {
  Vec3 v = isotropic_sphere(rng);
  if (v.z > 0.0) v.z = -v.z;
  return v;
}

Vec3 cosine_hemisphere_down(Rng& rng) {
  // Malley's method: sample a disc, project up; flip to the -z hemisphere.
  const double u = rng.uniform();
  const double phi = rng.uniform(0.0, 2.0 * std::numbers::pi);
  const double r = std::sqrt(u);
  const double x = r * std::cos(phi);
  const double y = r * std::sin(phi);
  const double z = -std::sqrt(std::max(0.0, 1.0 - u));
  return {x, y, z};
}

}  // namespace finser::stats
