#pragma once
/// \file artifact_store.hpp
/// \brief Content-addressed store for expensive pipeline artifacts.
///
/// The paper's Fig.-6 flow is a pipeline of cacheable stages: device e–h-pair
/// LUTs → cell POF LUTs → per-(species, energy) array-MC results → FIT. Each
/// stage's output is a pure function of a configuration subset, so it can be
/// addressed by a 64-bit FNV-1a fingerprint of exactly those knobs
/// (util::Fnv1a — the same digests the checkpoint layer uses) and reused by
/// every later run or campaign scenario that shares them.
///
/// The store generalizes the bespoke FNSRPOF3 POF-LUT cache into one
/// discipline for all artifact kinds:
///  * **Addressing** — key = (kind slug, fingerprint); the blob's path is a
///    pure function of the key, so two processes computing the same artifact
///    converge on the same file.
///  * **Integrity first** — every blob carries a magic, the key echo and a
///    CRC-32 over the payload; load verifies all three *before* any payload
///    byte is parsed (pof_table.cpp discipline).
///  * **Crash safety** — writes go through util::atomic_write_file (temp +
///    fsync + rename), so readers only ever see an old or a complete new
///    blob; concurrent writers of one key race benignly (identical content).
///  * **Never-throw loads** — a missing, torn, corrupted or stale blob is a
///    cache miss, not an error: try_get returns false with a reason and the
///    caller recomputes (docs/robustness.md).
///
/// Cache traffic is counted on the obs registry ("pipeline.artifact.hits" /
/// ".misses" / ".rejects" / ".writes") — the campaign tests and the
/// warm-vs-cold benchmark assert stage reuse through these counters.

#include <cstdint>
#include <string>
#include <vector>

namespace finser::pipeline {

/// Address of one artifact: a short path-safe kind slug ("cell_model",
/// "device_lut", "mc_bin", ...) plus the FNV-1a fingerprint of everything
/// the content depends on. Equal keys ⇒ interchangeable content.
struct ArtifactKey {
  std::string kind;
  std::uint64_t fingerprint = 0;
};

/// Content-addressed blob store rooted at one directory.
///
/// Thread-safe: the store keeps no mutable state; concurrent put/try_get on
/// any keys (including the same key) are safe through the atomic-write /
/// whole-file-read primitives.
class ArtifactStore {
 public:
  /// \param root directory for the blobs (created lazily on first put).
  /// Opening sweeps orphaned `*.tmp` files left in \p root by writers that
  /// crashed between temp-write and rename (see sweep_orphans), unless
  /// \p sweep_on_open is false (read-only inspection, e.g. `artifacts ls`,
  /// must not mutate the directory).
  explicit ArtifactStore(std::string root, bool sweep_on_open = true);

  const std::string& root() const { return root_; }

  /// Delete every `*.tmp` file directly inside \p dir. These are the debris
  /// of util::atomic_write_file calls that died before their rename; they
  /// are invisible to readers but accumulate across crashes. Counted as
  /// "pipeline.artifact.orphans_swept". A missing or unreadable \p dir is a
  /// no-op. Returns the number of files removed.
  static std::size_t sweep_orphans(const std::string& dir);

  /// Blob path of \p key: `<root>/<kind>-<fingerprint hex>.art`.
  std::string path_for(const ArtifactKey& key) const;

  /// Atomically persist \p payload under \p key. Returns false (with the
  /// cause in \p error if non-null) on I/O failure — the store is a cache,
  /// so callers typically log and continue. Honors the io_write_fail and
  /// cache_flip fault-injection sites like the POF-LUT cache does.
  bool put(const ArtifactKey& key, const std::vector<std::uint8_t>& payload,
           std::string* error = nullptr) const;

  /// Load the blob of \p key into \p out. Returns false on miss; a torn,
  /// corrupted, mis-keyed or truncated blob is a miss with a diagnostic in
  /// \p reason, never an exception. A plain missing file (the normal cold
  /// path) reports "no artifact".
  bool try_get(const ArtifactKey& key, std::vector<std::uint8_t>& out,
               std::string* reason = nullptr) const;

  /// One store entry as reported by list().
  struct Entry {
    ArtifactKey key;            ///< Parsed from the filename; for an
                                ///< unrecognized name, kind holds the
                                ///< filename and fingerprint is 0.
    std::uintmax_t bytes = 0;   ///< On-disk size.
    bool ok = false;            ///< Full envelope check (magic, CRC, key
                                ///< echo, payload length) passed.
    std::string status;         ///< "ok" or the try_get reject reason.
  };

  /// Read-only inventory of every `*.art` blob directly under root():
  /// filename-parsed key, size, and integrity status through the same
  /// never-throw load path try_get uses. Deterministic order (kind, then
  /// fingerprint). A missing or unreadable root yields an empty list.
  std::vector<Entry> list() const;

 private:
  std::string root_;
};

}  // namespace finser::pipeline
