#pragma once
/// \file campaign.hpp
/// \brief Declarative multi-scenario campaigns over the SER flow.
///
/// A campaign describes N scenarios (supply-voltage sets × data patterns ×
/// array sizes × geometry corners) in one JSON document and runs them as a
/// stage graph on the exec thread budget:
///
///   characterize(model A) ──┐
///   characterize(model B) ──┤           (one stage per *unique* cell-model
///   device_lut(alpha)     ──┤            fingerprint and per unique device
///   device_lut(proton)    ──┤            LUT — never per scenario)
///                           ▼
///   sweep(scenario 1) … sweep(scenario N)
///
/// Scenarios that share a cell-model fingerprint share the characterized
/// model object; with an artifact store configured (CampaignSpec::
/// artifact_dir) every expensive product — characterized models, device
/// e–h-pair LUTs, per-(species, energy-bin) array-MC results — is cached
/// content-addressed on disk, so a re-run or a sibling scenario pays only
/// for what is genuinely new. Caching never changes numbers: every blob
/// round-trips bit-exactly, and a hit is indistinguishable from recomputing.
///
/// A single-scenario campaign is byte-identical to driving core::SerFlow
/// directly (the CLI's `run` path): same characterization seeds, same
/// per-bin seed cursor discipline, same CSV formats — the CSV emitters here
/// are the ones the CLI uses.
///
/// Campaign JSON schema (all scenario keys optional unless noted; unknown
/// keys are rejected with a nearest-key suggestion):
///
/// ```json
/// {
///   "campaign": "vdd-corners",
///   "seed": 20140601,                // default scenario seed
///   "threads": 0,                    // 0 = auto (FINSER_THREADS, else HW)
///   "lanes": 0,                      // SPICE lane width: 0 = auto, 1, 4, 8
///   "artifact_dir": "out/artifacts", // "" disables the artifact store
///   "output_dir": "out",             // "" disables CSV emission
///   "defaults": { "strikes": 60000 },// merged under every scenario
///   "scenarios": [
///     {
///       "name": "nominal",           // required, unique
///       "rows": 9, "cols": 9,
///       "pattern": "checkerboard",   // ones|zeros|checkerboard|random
///       "pattern_seed": 1,
///       "vdds": [0.7, 0.8, 0.9, 1.0, 1.1],
///       "sigma_vt": 0.05,            // [V]
///       "cnode_f": 1.7e-16,          // storage-node capacitance [F]
///       "pv_samples": 200,
///       "strikes": 60000,
///       "histories": 60000,          // neutron MC (defaults to strikes)
///       "seed": 20140601,
///       "species": ["alpha", "proton"],
///       "cell_w_nm": 380.0, "cell_h_nm": 160.0,
///       "fin_w_nm": 10.0, "fin_h_nm": 26.0,
///       "temp_k": 300.0                  // device temperature [K]
///     }
///   ]
/// }
/// ```
///
/// The schema covers the knobs the CLI exposes; SerFlowConfig fields outside
/// it keep their defaults. campaign_to_json() emits every scenario fully
/// resolved (defaults folded in), and parse(campaign_to_json(spec)) == spec
/// — the round-trip behind `finser_cli --print-config`. Capacitance is in
/// farads, not femtofarads, precisely for this round-trip: a fF↔F unit
/// conversion is two float multiplies that need not compose to identity.

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "finser/ckpt/checkpoint.hpp"
#include "finser/core/ser_flow.hpp"
#include "finser/env/spectrum.hpp"
#include "finser/exec/progress.hpp"
#include "finser/phys/fin_mc.hpp"
#include "finser/pipeline/artifact_store.hpp"
#include "finser/util/csv.hpp"
#include "finser/util/json.hpp"

namespace finser::surface {
class ResponseSurface;
}

namespace finser::pipeline {

/// One scenario: a fully resolved flow configuration plus the spectra to
/// sweep. `flow.threads`, `flow.lut_cache_path` and `flow.bin_cache` are
/// owned by the campaign runner (thread budget, artifact store) and ignored
/// here.
struct ScenarioSpec {
  std::string name;
  std::vector<std::string> species;  ///< "alpha" | "proton" | "neutron".
  core::SerFlowConfig flow;
};

/// A parsed campaign: shared resources plus the scenario list.
struct CampaignSpec {
  std::string name = "campaign";
  std::string artifact_dir;             ///< "" = no artifact store.
  std::string output_dir = "finser_out";  ///< "" = no CSV outputs.
  std::size_t threads = 0;              ///< Whole-campaign budget; 0 = auto.
  /// SPICE engine lane width for every scenario: 0 = leave the process-wide
  /// resolution (--lanes / FINSER_LANES / widest compiled unit) alone.
  std::size_t lanes = 0;
  std::vector<ScenarioSpec> scenarios;
};

/// Parse a campaign document. Throws util::InvalidArgument naming the key
/// path (e.g. "scenarios[2]") for unknown keys — with a "did you mean"
/// suggestion when a known key is within edit distance 2 — and for
/// type/value errors.
CampaignSpec parse_campaign(const util::JsonValue& doc);
CampaignSpec parse_campaign_text(const std::string& text);
CampaignSpec parse_campaign_file(const std::string& path);

/// Serialize fully resolved: every scenario carries every schema key, no
/// "defaults" block. parse_campaign(campaign_to_json(spec)) reproduces
/// \p spec exactly (for the schema-covered fields).
util::JsonValue campaign_to_json(const CampaignSpec& spec);

/// Wrap one legacy flow configuration as a single-scenario campaign — the
/// bridge the CLI uses so `run` and `campaign` share one engine room.
CampaignSpec single_scenario_campaign(const core::SerFlowConfig& flow,
                                      std::vector<std::string> species,
                                      std::string output_dir,
                                      std::string name = "scenario");

/// Spectrum for a species name ("alpha" | "proton" | "neutron"); throws
/// util::InvalidArgument (with a nearest-name suggestion) otherwise.
env::Spectrum spectrum_for_species(const std::string& name);

/// Apply the execution-environment overrides to a scenario flow config:
/// FINSER_MC_SCALE, FINSER_CI_TARGET, FINSER_CLUSTER, and clearing the
/// legacy LUT cache path (the artifact store supersedes it). Both the
/// campaign runner and the serve-mode refinement path resolve flows through
/// this one helper, which is what keeps their response-surface fingerprints
/// — and hence their cached answers — aligned.
void resolve_flow_for_execution(core::SerFlowConfig& flow);

// --- CSV emitters (shared by the CLI `run` command and the campaign
// runner, which is what makes single-scenario output byte-identity hold by
// construction rather than by parallel maintenance). All of them read from
// a surface::ResponseSurface — the sweep overloads wrap the sweep into a
// transient surface first, so every consumer-facing number flows through
// the same query layer that `finser_cli serve` answers from. -----------------

/// POF(E, Vdd) table: columns energy_mev, vdd_v, pof_tot, pof_seu, pof_mbu,
/// pof_tot_se (with-PV estimates).
util::CsvTable pof_csv(const surface::ResponseSurface& surface);
util::CsvTable pof_csv(const core::EnergySweepResult& sweep);

/// Empty FIT summary table: columns species, vdd_v, fit_tot, fit_seu,
/// fit_mbu, fit_tot_no_pv.
util::CsvTable make_fit_table();

/// Append one sweep's per-voltage FIT rows to a make_fit_table() table.
void append_fit_rows(util::CsvTable& table, const std::string& species,
                     const surface::ResponseSurface& surface);
void append_fit_rows(util::CsvTable& table, const std::string& species,
                     const core::EnergySweepResult& sweep);

// --- stage graph ------------------------------------------------------------

/// A small deterministic DAG scheduler: stages run in dependency waves on
/// the exec thread budget. Within a wave, stages run concurrently on an
/// exec::ThreadPool and each receives an equal share of the budget for its
/// *internal* parallelism (flows and characterizers are thread-count-
/// invariant, so the split never changes results — only wall-clock).
/// Exceptions thrown by a stage propagate out of run().
class StageGraph {
 public:
  /// Add a stage. \p deps are indices of previously added stages (so the
  /// graph is acyclic by construction); \p fn receives its thread share.
  /// Returns the stage's index.
  std::size_t add(std::string label, std::vector<std::size_t> deps,
                  std::function<void(std::size_t threads)> fn);

  std::size_t size() const { return stages_.size(); }

  /// Run all stages. \p thread_budget 0 = auto.
  void run(std::size_t thread_budget,
           const exec::ProgressSink& progress = {}) const;

 private:
  struct Stage {
    std::string label;
    std::vector<std::size_t> deps;
    std::function<void(std::size_t)> fn;
  };
  std::vector<Stage> stages_;
};

// --- artifact adapters ------------------------------------------------------

/// ArtifactStore → core::BinCache adapter: per-(species, energy-bin)
/// array-MC results cached under one artifact kind. Never throws — a failed
/// load is a miss, a failed store is a lost entry.
class ArtifactBinCache final : public core::BinCache {
 public:
  explicit ArtifactBinCache(const ArtifactStore& store,
                            std::string kind = "array_bin")
      : store_(store), kind_(std::move(kind)) {}

  bool load(std::uint64_t fingerprint,
            std::vector<std::uint8_t>& out) override;
  void store(std::uint64_t fingerprint,
             const std::vector<std::uint8_t>& blob) override;

 private:
  const ArtifactStore& store_;
  std::string kind_;
};

/// Device-level e–h-pair LUT (paper Fig. 4) with artifact caching: returns
/// FinStrikeMc::build_lut's grid, loading it from \p store (kind
/// "device_lut") when a bit-exact cached copy exists and building +
/// storing it otherwise. \p store may be null (always build). Each real
/// build counts "pipeline.device_lut_builds".
util::Grid1 cached_device_lut(const ArtifactStore* store,
                              const geom::Aabb& fin_box,
                              const phys::FinStrikeMc::Config& config,
                              phys::Species species, double e_lo_mev,
                              double e_hi_mev, std::size_t points,
                              std::uint64_t seed);

// --- runner -----------------------------------------------------------------

/// Results of one scenario, sweeps aligned with ScenarioSpec::species.
struct ScenarioResult {
  std::string name;
  std::vector<core::EnergySweepResult> sweeps;
};

/// One node of a campaign's exported stage plan (see CampaignRunner::plan).
/// `id` is a stable, path-safe slug — "<index>-<kind>-<qualifier>", e.g.
/// "0-characterize-1a2b3c4d" or "3-sweep-nominal" — identical in every
/// process that parses the same campaign, which is what lets a shard
/// supervisor assign stages to worker processes by id alone and lets lease
/// and done-marker filenames embed it directly.
struct StageInfo {
  std::string id;
  std::string label;                ///< Human-readable (StageGraph label).
  std::vector<std::size_t> deps;    ///< Indices into the plan vector.
};

/// FNV-1a fingerprint of a campaign's *result-relevant* content: the fully
/// resolved campaign_to_json document with the execution knobs (threads,
/// lanes) zeroed, since they never change numbers. Two processes agree on
/// this iff they would compute identical results — shard leases and done
/// markers embed it so records from a different campaign (or an edited
/// spec) are rejected as stale, never trusted.
std::uint64_t campaign_fingerprint(const CampaignSpec& spec);

/// Executes a campaign as a stage graph. Characterization runs once per
/// unique cell-model fingerprint ("pipeline.characterizations" counts real
/// characterizations, not artifact hits or model shares); device LUTs once
/// per unique (geometry, species); scenario sweeps run as dependent stages.
/// Deterministic at any thread budget.
///
/// Two execution surfaces share one stage table:
///  * run() — the in-process path: every stage on one StageGraph.
///  * plan() + run_stage() — the sharded path: a supervisor process walks
///    plan() and assigns stage ids to `finser_cli worker` subprocesses,
///    which call run_stage(). Stage products flow through the artifact
///    store, so a worker that runs a sweep without having run its
///    characterize dependency in-process reloads (or, failing that,
///    recomputes) the cell model — bit-identical either way, because every
///    stage is a pure function of its fingerprint.
class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignSpec spec);

  const CampaignSpec& spec() const { return spec_; }

  /// The deterministic stage plan: same spec ⇒ same plan, in every process,
  /// at any thread count. Stage ids are unique (index-prefixed) and
  /// path-safe. Valid until the runner is destroyed.
  const std::vector<StageInfo>& plan();

  /// Run one stage by plan index. Dependencies need NOT have run in this
  /// process — missing inputs are reloaded from the artifact store or
  /// recomputed (see class comment). \p threads 0 = auto. Honors
  /// \p run.cancel (throws util::Cancelled); numerical failures propagate
  /// as the flow's usual exceptions.
  void run_stage(std::size_t index, std::size_t threads,
                 const exec::ProgressSink& progress = {},
                 const ckpt::RunOptions& run = {});

  /// Scenario results accumulated by run() / run_stage() sweep stages, in
  /// scenario order; entries of scenarios whose sweep has not run in this
  /// process have empty `sweeps`.
  const std::vector<ScenarioResult>& results();

  /// Run every scenario; returns results in scenario order. With
  /// output_dir set, writes per-scenario CSVs to
  /// `<output_dir>/<scenario>/pof_<species>.csv` and
  /// `<output_dir>/<scenario>/fit_summary.csv` plus per-campaign device
  /// LUT curves `<output_dir>/eh_pairs_<species>.csv`. Honors
  /// \p run.cancel at chunk granularity (throws util::Cancelled);
  /// resumability comes from the artifact store, not checkpoint files —
  /// a re-run after a kill reloads every finished product from artifacts.
  std::vector<ScenarioResult> run(const exec::ProgressSink& progress = {},
                                  const ckpt::RunOptions& run = {});

 private:
  struct Exec;  // persistent stage state (flows, store, models, results)
  void ensure_exec();

  CampaignSpec spec_;
  std::shared_ptr<Exec> exec_;
  std::vector<StageInfo> plan_;
};

}  // namespace finser::pipeline
