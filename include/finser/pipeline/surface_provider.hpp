#pragma once
/// \file surface_provider.hpp
/// \brief Response-surface identity and the serve-mode refinement backend.
///
/// The provider is the bridge between `finser::surface` (grids, codec,
/// serve loop) and the campaign runner: it owns the three-level cache
/// hierarchy for a campaign's surfaces —
///
///   memory map  →  `response_surface` artifacts  →  CampaignRunner build
///
/// — and exposes exactly the two callbacks ServeSession wants. The build
/// path never refines one species in isolation: SerFlow draws its
/// Monte-Carlo seeds from one serial cursor across the species sweeps of a
/// scenario, so a species' numbers depend on what swept before it. A miss
/// therefore schedules the *whole scenario* (its full species list, in
/// order) through a single-scenario CampaignRunner on the exec thread
/// budget — which also means one refinement answers every queued request
/// touching that scenario, and the numbers match the batch pipeline
/// byte-for-byte because they come from the identical code path.

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "finser/ckpt/checkpoint.hpp"
#include "finser/exec/progress.hpp"
#include "finser/pipeline/artifact_store.hpp"
#include "finser/pipeline/campaign.hpp"
#include "finser/surface/response_surface.hpp"
#include "finser/surface/serve.hpp"

namespace finser::pipeline {

/// Content-address of the ResponseSurface for species index \p species_index
/// of \p scenario (whose flow must already be resolved through
/// resolve_flow_for_execution). Hashes the fully resolved single-scenario
/// campaign JSON — threads/lanes zeroed, dirs cleared, full species list
/// included — plus the species position. Everything that can change a
/// number is in the hash; everything that cannot (thread budget, lane
/// width, output paths) is not.
std::uint64_t response_surface_fingerprint(const ScenarioSpec& scenario,
                                           std::size_t species_index);

/// Serve-mode surface cache + refinement backend (see file comment).
class SurfaceProvider {
 public:
  /// \param spec     the campaign whose scenarios are servable. Kept
  ///                 *unresolved*: CampaignRunner applies the env overrides
  ///                 itself, and resolving here too would apply
  ///                 multiplicative knobs (FINSER_MC_SCALE) twice. Resolved
  ///                 copies are made only for fingerprint computation.
  /// \param threads  exec thread budget for refinement builds (0 = auto).
  SurfaceProvider(CampaignSpec spec, std::size_t threads,
                  exec::ProgressSink progress = {},
                  ckpt::RunOptions run = {});

  /// Scenario catalog in ServeSession's shape (names, species order,
  /// temperature).
  std::vector<surface::ServeScenario> catalog() const;

  /// Cache-only lookup: memory, then the `response_surface` artifact kind.
  /// Never simulates. Returns nullptr on a miss; pointers stay valid for
  /// the provider's lifetime. Counts "surface.memory_hits" /
  /// "surface.artifact_hits".
  const surface::ResponseSurface* lookup(const std::string& scenario,
                                         const std::string& species);

  /// Refinement: run the scenario's full species list through a
  /// single-scenario CampaignRunner (counts "surface.builds"), cache every
  /// resulting surface, and return the requested one. Throws
  /// util::Cancelled on cooperative cancellation, util::InvalidArgument for
  /// unknown names.
  const surface::ResponseSurface* refine(const std::string& scenario,
                                         const std::string& species);

 private:
  const ScenarioSpec& find_scenario(const std::string& name) const;
  const surface::ResponseSurface* cache_put(surface::ResponseSurface surf,
                                            const std::string& scenario,
                                            const std::string& species);

  CampaignSpec spec_;  ///< Unresolved (see ctor doc).
  std::size_t threads_ = 0;
  exec::ProgressSink progress_;
  ckpt::RunOptions run_;
  std::optional<ArtifactStore> store_;
  /// (scenario, species) → surface; node-stable so lookup() pointers
  /// survive later insertions.
  std::map<std::pair<std::string, std::string>, surface::ResponseSurface>
      cache_;
};

}  // namespace finser::pipeline
