#pragma once
/// \file aabb.hpp
/// \brief Axis-aligned bounding boxes and ray-box intersection.
///
/// Fins, gates and well regions in the SRAM layout are modeled as AABBs
/// (fins are literally rectangular boxes in SOI FinFET technology, paper
/// Fig. 3a), so the "which fins does this particle track cross, and with
/// what path length" query reduces to exact slab-method ray-box clipping.

#include <optional>

#include "finser/geom/vec3.hpp"

namespace finser::geom {

/// Parametric ray-box overlap: the ray is inside the box for t in [t_in, t_out].
struct RayInterval {
  double t_in = 0.0;
  double t_out = 0.0;

  double length() const { return t_out - t_in; }
};

/// Axis-aligned box [lo, hi] (all coordinates in nm).
struct Aabb {
  Vec3 lo;
  Vec3 hi;

  /// True when the box has non-negative extent on all axes.
  bool valid() const { return lo.x <= hi.x && lo.y <= hi.y && lo.z <= hi.z; }

  Vec3 center() const { return (lo + hi) * 0.5; }
  Vec3 extent() const { return hi - lo; }
  double volume() const {
    const Vec3 e = extent();
    return e.x * e.y * e.z;
  }

  bool contains(const Vec3& p) const {
    return p.x >= lo.x && p.x <= hi.x && p.y >= lo.y && p.y <= hi.y && p.z >= lo.z &&
           p.z <= hi.z;
  }

  bool overlaps(const Aabb& o) const {
    return lo.x <= o.hi.x && hi.x >= o.lo.x && lo.y <= o.hi.y && hi.y >= o.lo.y &&
           lo.z <= o.hi.z && hi.z >= o.lo.z;
  }

  /// Grow to include \p o.
  void expand(const Aabb& o);

  /// Slab-method intersection with a ray for t >= \p t_min.
  /// Returns the clipped [t_in, t_out] interval, or nullopt on a miss.
  /// Grazing hits (t_in == t_out) are reported as hits with zero length.
  std::optional<RayInterval> intersect(const Ray& ray, double t_min = 0.0) const;
};

}  // namespace finser::geom
