#pragma once
/// \file vec3.hpp
/// \brief 3-D vector algebra for layout geometry and particle tracks.
///
/// Coordinates throughout finser's geometry layer are in **nanometres**,
/// x/y in the die plane (x along the wordline, y along the bitline) and
/// z vertical (z = 0 at the top of the BOX, fins extend upward).

#include <cmath>

namespace finser::geom {

/// Plain 3-vector of doubles (value type, constexpr-friendly).
struct Vec3 {
  double x = 0.0;
  double y = 0.0;
  double z = 0.0;

  constexpr Vec3() = default;
  constexpr Vec3(double px, double py, double pz) : x(px), y(py), z(pz) {}

  constexpr Vec3 operator+(const Vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
  constexpr Vec3 operator-(const Vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
  constexpr Vec3 operator*(double s) const { return {x * s, y * s, z * s}; }
  constexpr Vec3 operator/(double s) const { return {x / s, y / s, z / s}; }
  constexpr Vec3 operator-() const { return {-x, -y, -z}; }

  constexpr Vec3& operator+=(const Vec3& o) {
    x += o.x; y += o.y; z += o.z;
    return *this;
  }
  constexpr Vec3& operator-=(const Vec3& o) {
    x -= o.x; y -= o.y; z -= o.z;
    return *this;
  }
  constexpr Vec3& operator*=(double s) {
    x *= s; y *= s; z *= s;
    return *this;
  }

  constexpr bool operator==(const Vec3& o) const {
    return x == o.x && y == o.y && z == o.z;
  }

  constexpr double dot(const Vec3& o) const { return x * o.x + y * o.y + z * o.z; }

  constexpr Vec3 cross(const Vec3& o) const {
    return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
  }

  double norm() const { return std::sqrt(dot(*this)); }
  constexpr double norm2() const { return dot(*this); }

  /// Unit vector in the same direction (undefined for the zero vector).
  Vec3 normalized() const {
    const double n = norm();
    return {x / n, y / n, z / n};
  }
};

constexpr Vec3 operator*(double s, const Vec3& v) { return v * s; }

/// A half-line: origin + t * direction, t >= 0, direction unit-length.
struct Ray {
  Vec3 origin;
  Vec3 dir;

  constexpr Vec3 at(double t) const { return origin + dir * t; }
};

}  // namespace finser::geom
