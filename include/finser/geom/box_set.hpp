#pragma once
/// \file box_set.hpp
/// \brief Collections of labeled AABBs with ray queries.
///
/// An SRAM array layout becomes a BoxSet of fin boxes (hundreds to a few
/// thousand). Array-level Monte Carlo shoots millions of rays at it, so a
/// 3-D DDA uniform-grid accelerator is provided next to the brute-force
/// reference implementation (the two are property-tested to be equivalent).

#include <cstdint>
#include <vector>

#include "finser/geom/aabb.hpp"

namespace finser::geom {

/// One ray-box crossing: which box, and the parametric [t_in, t_out].
struct BoxHit {
  std::uint32_t id = 0;
  RayInterval interval;
};

/// A flat set of boxes identified by dense ids (insertion order).
class BoxSet {
 public:
  /// Add a box; returns its id. The box must be valid().
  std::uint32_t add(const Aabb& box);

  std::size_t size() const { return boxes_.size(); }
  bool empty() const { return boxes_.empty(); }
  const Aabb& box(std::uint32_t id) const { return boxes_[id]; }
  const std::vector<Aabb>& boxes() const { return boxes_; }

  /// Bounding box of the whole set (throws if empty).
  Aabb bounds() const;

  /// Brute-force query: all boxes crossed by \p ray (t >= 0), sorted by t_in.
  void query(const Ray& ray, std::vector<BoxHit>& out) const;

 private:
  std::vector<Aabb> boxes_;
};

/// Uniform-grid (3-D DDA) ray-query accelerator over an immutable BoxSet.
class UniformGrid {
 public:
  /// Build over \p set (which must outlive the grid and stay unmodified).
  /// \param target_boxes_per_cell controls grid resolution (default 4).
  explicit UniformGrid(const BoxSet& set, double target_boxes_per_cell = 4.0);

  /// Same contract as BoxSet::query, but accelerated.
  /// Not thread-safe (uses per-query scratch state).
  void query(const Ray& ray, std::vector<BoxHit>& out);

  /// Grid resolution per axis (for diagnostics).
  int nx() const { return n_[0]; }
  int ny() const { return n_[1]; }
  int nz() const { return n_[2]; }

 private:
  std::size_t cell_index(int ix, int iy, int iz) const {
    return (static_cast<std::size_t>(iz) * static_cast<std::size_t>(n_[1]) +
            static_cast<std::size_t>(iy)) *
               static_cast<std::size_t>(n_[0]) +
           static_cast<std::size_t>(ix);
  }

  const BoxSet* set_;
  Aabb bounds_;
  int n_[3] = {1, 1, 1};
  Vec3 cell_size_;
  std::vector<std::vector<std::uint32_t>> cells_;

  // Per-query duplicate suppression (epoch-stamped).
  std::vector<std::uint64_t> stamp_;
  std::uint64_t epoch_ = 0;
};

}  // namespace finser::geom
