#pragma once
/// \file vr.hpp
/// \brief Variance reduction for the array-level Monte Carlos.
///
/// Most strikes miss every sensitive fin, so the uniform source estimator
/// spends the bulk of its budget on zero-POF samples. This header provides
/// the three levers the engines use to spend that budget better
/// (docs/statistics.md derives each estimator):
///
///  * FocusPlane — importance sampling of the strike position on the source
///    plane: a mixture that throws `focus_fraction` of the samples uniformly
///    into dilated sensitive-fin footprint boxes and the rest uniformly over
///    the whole plane. The proposal density is exact even when boxes overlap
///    (point-in-box cover counting), so the likelihood-ratio weight
///    w = p_uniform / q is exact and bounded by 1/(1 - focus_fraction) —
///    the estimator stays exactly unbiased, never merely approximately.
///  * biased_hemisphere_down — a cosine/isotropic direction mixture under
///    the isotropic angular law, again with the exact likelihood ratio.
///  * SobolSequence — a scrambled Sobol (0,2)-sequence in base 2, indexed by
///    the *global* strike index so the point set is independent of chunking,
///    with a per-dimension digital shift derived from the run seed through
///    the counter-based Rng::derive_seed interface.
///
/// CiStopConfig + stopping_rounds() define the deterministic chunk-granular
/// early-stopping schedule shared by all engines: the decision after round k
/// is a pure function of the merged statistics of chunks [0, b_k), so it is
/// identical at any thread count, any worker count, and across kill/resume.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "finser/geom/vec3.hpp"
#include "finser/stats/rng.hpp"

namespace finser::stats {

// ---------------------------------------------------------------------------
// Configuration
// ---------------------------------------------------------------------------

/// Quasi-Monte-Carlo point set for the source-position dimensions.
enum class QmcMode {
  kNone,   ///< Pseudo-random positions (default).
  kSobol,  ///< Scrambled Sobol points indexed by global strike index.
};

/// Knobs of the charged-particle source variance reduction. All default to
/// "off": a default-constructed config reproduces the uniform estimator
/// bit-for-bit.
struct SamplingConfig {
  /// Mixture mass thrown at the focus boxes under importance position
  /// sampling (SourcePositionSampling::kImportance). Must be in [0, 1);
  /// the uniform mixture floor keeps every weight finite.
  double focus_fraction = 0.9;
  /// Base lateral dilation of each sensitive-fin footprint box [nm]. The
  /// track-aware sampler adds the per-|z|-band lateral sweep (and the
  /// within-sector azimuth slack) on top of this automatically, and energy
  /// deposition happens strictly on the straight track, so the base margin
  /// is pure safety slack and stays small.
  double focus_margin_nm = 5.0;
  /// Cosine-mixture mass for the isotropic angular law, in [0, 1).
  /// 0 = pure isotropic (no direction bias, weight identically 1).
  double direction_bias = 0.0;
  /// Grazing-mixture mass of the track-aware importance sampler
  /// (SourcePositionSampling::kImportance under the isotropic law), in
  /// [0, 1). Near-horizontal tracks sweep across many cells and carry most
  /// of the POF variance, so the joint source proposal oversamples small
  /// |z| from the shifted-reciprocal density ~1/(|z| + kGrazingZ0) with the
  /// exact likelihood-ratio weight (grazing_hemisphere_down). Ignored
  /// outside kImportance; 0 = pure isotropic directions.
  double grazing_bias = 0.9;
  /// Within-bin log-uniform energy strata (paper Eq. 8 bins): stratum of a
  /// strike is a pure function of its global index, each stratum tiles an
  /// equal log-width slice of [e_lo, e_hi], so the strata partition the bin
  /// exactly (unit weight). 0 = off: every strike runs at the bin's
  /// representative energy (the estimand the golden figures pin).
  std::size_t energy_strata = 0;
  /// QMC point set for the position dimensions.
  QmcMode qmc = QmcMode::kNone;
};

/// Per-energy-bin CI-driven early stopping.
struct CiStopConfig {
  /// Target relative half-width of the 95% CI on the POF_tot channel
  /// (max over supply voltages and PV modes). 0 = disabled: the engine
  /// runs its full strike budget, byte-identical to before this knob
  /// existed.
  double target = 0.0;
  /// Chunks completed before the first stopping decision.
  std::size_t min_chunks = 8;
  /// Round-size growth factor (each round extends the computed prefix by
  /// this factor before the next decision).
  double growth = 2.0;

  bool enabled() const { return target > 0.0; }
};

/// Two-sided 95% normal quantile used by every stopping rule and error bar.
inline constexpr double kZ95 = 1.959963984540054;

/// Relative half-width of the 95% CI: kZ95 * se / mean. Zero mean means the
/// accumulator has seen no POF mass at all — treated as converged (returns
/// 0); see docs/statistics.md for why that is safe under a min_chunks floor.
/// (The round boundaries themselves live in ckpt::round_boundaries — the
/// checkpoint layer owns the schedule so resume replays it exactly.)
double relative_halfwidth(double mean, double se);

// ---------------------------------------------------------------------------
// Importance sampling of the source-plane position
// ---------------------------------------------------------------------------

/// Axis-aligned 2-D focus box on the source plane [nm].
struct FocusBox {
  double x_lo = 0.0;
  double x_hi = 0.0;
  double y_lo = 0.0;
  double y_hi = 0.0;

  double area() const { return (x_hi - x_lo) * (y_hi - y_lo); }
  bool contains(double x, double y) const {
    return x >= x_lo && x <= x_hi && y >= y_lo && y <= y_hi;
  }
};

/// Mixture proposal over the rectangular source plane:
///
///   q(x) = alpha * cover(x) / sum_areas + (1 - alpha) / plane_area
///
/// where cover(x) counts the focus boxes containing x. Sampling draws a
/// focus box with probability proportional to its area (double-covered
/// regions are double-likely, which is exactly what the cover count in the
/// density accounts for), so overlapping boxes need no union computation.
/// The likelihood-ratio weight of a sample is (1/plane_area) / q(x).
class FocusPlane {
 public:
  /// \param boxes are clipped to the plane; empty/degenerate boxes (and an
  /// empty set) degrade alpha to 0 — pure uniform sampling, weight 1.
  FocusPlane(double x_lo, double x_hi, double y_lo, double y_hi,
             std::vector<FocusBox> boxes, double alpha);

  struct Sample {
    double x = 0.0;
    double y = 0.0;
    double weight = 1.0;  ///< Exact likelihood ratio p_uniform / q.
    bool focused = false;  ///< Drawn from the focus component.
  };

  /// Map three uniforms in [0, 1) to a weighted position. \p u_select picks
  /// the mixture branch and (rescaled) the focus box, \p u_x / \p u_y place
  /// the point — so a QMC point set can drive the sampler directly.
  Sample sample(double u_select, double u_x, double u_y) const;

  /// Mixture density at (x, y) [nm^-2]; 0 outside the plane.
  double pdf(double x, double y) const;

  /// Likelihood-ratio weight p_uniform / q at (x, y).
  double weight(double x, double y) const;

  double alpha() const { return alpha_; }
  double plane_area() const { return plane_area_; }
  /// Total focus area counted with multiplicity (the mixture normalizer).
  double focus_area() const { return focus_area_; }
  std::size_t box_count() const { return boxes_.size(); }

 private:
  double x_lo_, x_hi_, y_lo_, y_hi_;
  double plane_area_;
  double alpha_;
  double focus_area_ = 0.0;
  std::vector<FocusBox> boxes_;
  std::vector<double> cum_area_;  ///< Cumulative areas for box selection.
};

// ---------------------------------------------------------------------------
// Direction-mixture importance sampling
// ---------------------------------------------------------------------------

struct DirectionSample {
  geom::Vec3 dir;
  double weight = 1.0;  ///< Exact likelihood ratio p_isotropic / q.
};

/// Downward direction from the mixture q = beta * cosine + (1 - beta) *
/// isotropic, weighted back to the isotropic hemisphere law:
/// w = (1/2pi) / q(dir) = 1 / (2 beta |dir.z| + (1 - beta)). beta = 0
/// reproduces isotropic_hemisphere_down exactly (same draws, weight 1).
DirectionSample biased_hemisphere_down(Rng& rng, double beta);

/// Grazing-incidence floor of the shifted-reciprocal direction mixture: the
/// grazing component's |z| density is proportional to 1 / (|z| + kGrazingZ0),
/// i.e. ~1/|z| oversampling down to |z| ~ kGrazingZ0 and flat below (tracks
/// more grazing than that out-range the array, so their POF second moment
/// stops growing — see grazing_hemisphere_down).
inline constexpr double kGrazingZ0 = 0.03;

/// Downward direction from the grazing mixture
/// q(|z|) = delta * C / (|z| + kGrazingZ0) + (1 - delta), C = 1 / ln(1 +
/// 1/kGrazingZ0), weighted back to the isotropic hemisphere law (|z|
/// uniform): w = 1 / q, bounded by 1 / (1 - delta). Oversamples
/// near-horizontal tracks — the MBU-rich, high-variance tail of the POF
/// estimator — matching the ~1/|z| growth of sqrt(E[X^2 | z]). delta = 0
/// reproduces isotropic_hemisphere_down exactly (same draws, weight 1).
DirectionSample grazing_hemisphere_down(Rng& rng, double delta);

// ---------------------------------------------------------------------------
// Scrambled Sobol sequence
// ---------------------------------------------------------------------------

/// First four dimensions of the Joe–Kuo Sobol sequence with a per-dimension
/// random digital shift (XOR scrambling). Points are computed directly from
/// the index (Gray-code formula), so point \p index is the same value no
/// matter which chunk or worker asks — the QMC analogue of the counter-based
/// Rng::stream contract. Dimension pairs keep the (0,2)-sequence dyadic
/// stratification property; the digital shift randomizes the set per run
/// seed while preserving it.
class SobolSequence {
 public:
  static constexpr std::size_t kDims = 4;

  /// \param scramble_seed keys the per-dimension digital shifts (derive one
  /// from the run seed via Rng::derive_seed). The same seed always produces
  /// the same point set.
  explicit SobolSequence(std::uint64_t scramble_seed);

  /// Coordinate \p dim (< kDims) of point \p index, in [0, 1).
  double point(std::uint64_t index, std::size_t dim) const;

 private:
  static constexpr std::size_t kBits = 32;
  std::uint32_t dirs_[kDims][kBits];
  std::uint32_t shift_[kDims];
};

}  // namespace finser::stats
