#pragma once
/// \file rng.hpp
/// \brief Deterministic pseudo-random number generation for Monte Carlo.
///
/// finser implements xoshiro256++ (Blackman & Vigna) seeded through
/// SplitMix64 rather than using std::mt19937 so that results are
/// bit-reproducible across standard libraries and platforms — MC campaigns
/// in EXPERIMENTS.md quote seeds. Gaussian variates use the polar
/// (Marsaglia) method for the same reason: std::normal_distribution's
/// algorithm is implementation-defined.

#include <cstdint>

namespace finser::stats {

/// xoshiro256++ engine. Satisfies std::uniform_random_bit_generator.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four 64-bit state words via SplitMix64(\p seed).
  explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ull);

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() { return ~static_cast<result_type>(0); }

  /// Next raw 64-bit output.
  result_type operator()();

  /// Uniform double in [0, 1).
  double uniform();

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi);

  /// Uniform integer in [0, n) for n > 0 (Lemire's method).
  std::uint64_t uniform_index(std::uint64_t n);

  /// Standard normal variate (Marsaglia polar method).
  double normal();

  /// Normal variate with mean \p mu and standard deviation \p sigma.
  double normal(double mu, double sigma);

  /// Exponential variate with rate \p lambda (> 0).
  double exponential(double lambda);

  /// Bernoulli trial with success probability \p p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Derive an independently seeded child stream (for sub-simulations);
  /// advances this generator once.
  Rng split();

  /// Counter-based stream derivation: a decorrelated 64-bit sub-seed for
  /// stream \p stream_id under \p root_seed, built on SplitMix64 (the root
  /// is mixed once, then the stream counter walks the SplitMix64 sequence).
  /// Stream *i* of a given root is the same value no matter which thread
  /// asks or in what order — the foundation of the exec layer's
  /// thread-count-invariant reproducibility (docs/parallelism.md).
  static std::uint64_t derive_seed(std::uint64_t root_seed,
                                   std::uint64_t stream_id);

  /// Generator seeded with derive_seed(root_seed, stream_id).
  static Rng stream(std::uint64_t root_seed, std::uint64_t stream_id);

 private:
  std::uint64_t s_[4];
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

}  // namespace finser::stats
