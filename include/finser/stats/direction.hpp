#pragma once
/// \file direction.hpp
/// \brief Random direction sampling for particle sources.
///
/// The paper's array MC generates "a random particle with a random direction
/// and position" (Sec. 5.1 step 1). finser supports two angular laws for the
/// downward hemisphere source plane above the die:
///  * isotropic — uniform on the solid angle (alpha emission from package
///    material in close proximity);
///  * cosine-law — flux-weighted arrival through a plane (appropriate for an
///    external isotropic field such as atmospheric protons).
/// Directions point *into* the die: dir.z < 0.

#include "finser/geom/vec3.hpp"
#include "finser/stats/rng.hpp"

namespace finser::stats {

/// Uniform direction on the full unit sphere.
geom::Vec3 isotropic_sphere(Rng& rng);

/// Uniform direction on the downward hemisphere (dir.z <= 0).
geom::Vec3 isotropic_hemisphere_down(Rng& rng);

/// Cosine-law direction on the downward hemisphere (pdf ∝ |cosθ|).
geom::Vec3 cosine_hemisphere_down(Rng& rng);

}  // namespace finser::stats
