#pragma once
/// \file histogram.hpp
/// \brief Weighted fixed-bin histogram for MC diagnostics and spectra checks.

#include <cstddef>
#include <vector>

namespace finser::stats {

/// Equal-width (linear or logarithmic) binning over [lo, hi] with
/// underflow/overflow tracking and optional per-sample weights.
class Histogram {
 public:
  enum class Binning { kLinear, kLog };

  Histogram(double lo, double hi, std::size_t bins, Binning binning = Binning::kLinear);

  void add(double x, double weight = 1.0);

  std::size_t bin_count() const { return counts_.size(); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;
  double bin_center(std::size_t i) const;
  double bin_width(std::size_t i) const { return bin_hi(i) - bin_lo(i); }

  /// Accumulated weight in bin i.
  double count(std::size_t i) const { return counts_[i]; }
  double underflow() const { return underflow_; }
  double overflow() const { return overflow_; }

  /// Total in-range weight.
  double total() const;

  /// Probability density estimate for bin i: weight / (total * bin width).
  double density(std::size_t i) const;

 private:
  double lo_, hi_;
  Binning binning_;
  double tlo_, thi_;  ///< Transformed bounds (log-space when kLog).
  std::vector<double> counts_;
  double underflow_ = 0.0;
  double overflow_ = 0.0;
};

}  // namespace finser::stats
