#pragma once
/// \file summary.hpp
/// \brief Online (Welford) accumulation of Monte-Carlo estimators.
///
/// Array-level MC campaigns average POF over millions of strikes (paper
/// Sec. 5.1 step 6). Welford's algorithm keeps the running mean/variance
/// numerically stable at any sample count, and `stderr_of_mean()` gives the
/// error bars quoted in EXPERIMENTS.md.

#include <cstddef>
#include <cstdint>

namespace finser::stats {

/// Numerically stable running mean / variance accumulator.
class RunningStats {
 public:
  /// The complete internal state, exposed for bit-exact serialization
  /// (checkpoint blobs round-trip these fields as raw IEEE-754 doubles, so a
  /// resumed accumulator is indistinguishable from the original).
  struct Raw {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  /// Add one observation.
  void add(double x);

  /// Merge another accumulator (parallel reduction form).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance (0 for n < 2).
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Standard error of the mean (0 for n < 2).
  double stderr_of_mean() const;

  double min() const { return min_; }
  double max() const { return max_; }

  Raw raw() const {
    return Raw{static_cast<std::uint64_t>(n_), mean_, m2_, min_, max_};
  }

  static RunningStats from_raw(const Raw& r) {
    RunningStats s;
    s.n_ = static_cast<std::size_t>(r.n);
    s.mean_ = r.mean;
    s.m2_ = r.m2;
    s.min_ = r.min;
    s.max_ = r.max;
    return s;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace finser::stats
