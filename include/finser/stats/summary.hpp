#pragma once
/// \file summary.hpp
/// \brief Online (Welford) accumulation of Monte-Carlo estimators.
///
/// Array-level MC campaigns average POF over millions of strikes (paper
/// Sec. 5.1 step 6). Welford's algorithm keeps the running mean/variance
/// numerically stable at any sample count, and `stderr_of_mean()` gives the
/// error bars quoted in EXPERIMENTS.md.

#include <cstddef>

namespace finser::stats {

/// Numerically stable running mean / variance accumulator.
class RunningStats {
 public:
  /// Add one observation.
  void add(double x);

  /// Merge another accumulator (parallel reduction form).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance (0 for n < 2).
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Standard error of the mean (0 for n < 2).
  double stderr_of_mean() const;

  double min() const { return min_; }
  double max() const { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace finser::stats
