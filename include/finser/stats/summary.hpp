#pragma once
/// \file summary.hpp
/// \brief Online (Welford) accumulation of Monte-Carlo estimators.
///
/// Array-level MC campaigns average POF over millions of strikes (paper
/// Sec. 5.1 step 6). Welford's algorithm keeps the running mean/variance
/// numerically stable at any sample count, and `stderr_of_mean()` gives the
/// error bars quoted in EXPERIMENTS.md.

#include <cstddef>
#include <cstdint>

namespace finser::stats {

/// Numerically stable running mean / variance accumulator.
class RunningStats {
 public:
  /// The complete internal state, exposed for bit-exact serialization
  /// (checkpoint blobs round-trip these fields as raw IEEE-754 doubles, so a
  /// resumed accumulator is indistinguishable from the original).
  struct Raw {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double min = 0.0;
    double max = 0.0;
  };

  /// Add one observation.
  void add(double x);

  /// Merge another accumulator (parallel reduction form).
  void merge(const RunningStats& other);

  std::size_t count() const { return n_; }
  double mean() const { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance (0 for n < 2).
  double variance() const;

  /// Sample standard deviation.
  double stddev() const;

  /// Standard error of the mean (0 for n < 2).
  double stderr_of_mean() const;

  double min() const { return min_; }
  double max() const { return max_; }

  Raw raw() const {
    return Raw{static_cast<std::uint64_t>(n_), mean_, m2_, min_, max_};
  }

  static RunningStats from_raw(const Raw& r) {
    RunningStats s;
    s.n_ = static_cast<std::size_t>(r.n);
    s.mean_ = r.mean;
    s.m2_ = r.m2;
    s.min_ = r.min;
    s.max_ = r.max;
    return s;
  }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Weighted running mean / variance accumulator (West's incremental update,
/// Chan-style parallel merge), used by the variance-reduction layer for
/// importance-sampled estimators: each observation carries its exact
/// likelihood-ratio weight, and the effective sample size
/// ESS = (Σw)² / Σw² quantifies how much weight degeneracy the proposal
/// cost (ESS == count() for unit weights). Zero-weight observations are
/// counted but carry no moment mass — a merged-in all-zero-weight chunk is
/// a no-op on the moments. Weights must be non-negative and finite; the
/// moment state stays finite for weight ratios up to ~1e±150 (Σw² is the
/// first quantity to overflow — tested in test_stats.cpp).
class WeightedRunningStats {
 public:
  /// Complete internal state for bit-exact serialization (the same
  /// round-trip contract as RunningStats::Raw).
  struct Raw {
    std::uint64_t n = 0;
    double sum_w = 0.0;
    double sum_w2 = 0.0;
    double mean = 0.0;
    double m2 = 0.0;
  };

  /// Add one observation \p x with weight \p w >= 0.
  void add(double x, double w);

  /// Merge another accumulator (parallel reduction form).
  void merge(const WeightedRunningStats& other);

  /// Observations seen, including zero-weight ones.
  std::size_t count() const { return n_; }
  double sum_weights() const { return sum_w_; }
  double sum_weights_sq() const { return sum_w2_; }

  /// Weighted mean (0 before any positive-weight observation).
  double mean() const { return sum_w_ > 0.0 ? mean_ : 0.0; }

  /// Effective sample size (Σw)² / Σw²; equals count() for unit weights,
  /// 0 before any positive-weight observation.
  double ess() const;

  /// Reliability-weighted unbiased sample variance (0 when ESS <= 1).
  double variance() const;

  /// Standard error of the weighted mean: sqrt(variance / ESS).
  double stderr_of_mean() const;

  Raw raw() const {
    return Raw{static_cast<std::uint64_t>(n_), sum_w_, sum_w2_, mean_, m2_};
  }

  static WeightedRunningStats from_raw(const Raw& r) {
    WeightedRunningStats s;
    s.n_ = static_cast<std::size_t>(r.n);
    s.sum_w_ = r.sum_w;
    s.sum_w2_ = r.sum_w2;
    s.mean_ = r.mean;
    s.m2_ = r.m2;
    return s;
  }

 private:
  std::size_t n_ = 0;
  double sum_w_ = 0.0;
  double sum_w2_ = 0.0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace finser::stats
