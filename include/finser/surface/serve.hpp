#pragma once
/// \file serve.hpp
/// \brief Long-lived NDJSON query loop over ResponseSurfaces
/// (docs/serving.md).
///
/// The session reads line-delimited JSON requests, answers POF/FIT queries
/// from cached surfaces where possible, and batches cache misses: requests
/// are accumulated while more input is already buffered and resolved
/// together at the blocking boundary, so one refinement run (which sweeps a
/// whole scenario through the lane-batched characterizer) serves every
/// queued request touching that scenario. A bounded pending queue provides
/// backpressure — requests arriving while the queue is full receive an
/// immediate `shed` response instead of unbounded buffering. SIGINT/SIGTERM
/// (via exec::CancelToken) drains cleanly: pending requests still
/// answerable from cache are answered, the rest are replied `cancelled`,
/// and the loop exits without starting new simulations.
///
/// The session itself knows nothing about how surfaces are produced — cache
/// lookup and refinement are injected callbacks (pipeline::SurfaceProvider
/// in practice), which keeps `finser::surface` free of a pipeline
/// dependency.

#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "finser/exec/cancel.hpp"
#include "finser/surface/response_surface.hpp"

namespace finser::surface {

/// One scenario the server can answer for, with its species in sweep order
/// (the order is part of the identity: SerFlow's Monte-Carlo seed cursor
/// advances serially across the species of a scenario).
struct ServeScenario {
  std::string name;
  std::vector<std::string> species;
  double temp_k = 0.0;
};

struct ServeConfig {
  /// Maximum unanswered requests held before shedding (backpressure bound).
  std::size_t max_pending = 64;
};

class ServeSession {
 public:
  /// Cache-only lookup (memory or artifact) — must never simulate.
  /// Returns nullptr on a miss. The pointer must stay valid for the
  /// session's lifetime.
  using LookupFn = std::function<const ResponseSurface*(
      const std::string& scenario, const std::string& species)>;

  /// Refinement: build (and cache) every surface of \p scenario, return the
  /// one for \p species. May throw (util::Cancelled on cooperative
  /// cancellation, util::Error on failure).
  using RefineFn = LookupFn;

  ServeSession(std::vector<ServeScenario> catalog, ServeConfig config,
               LookupFn lookup, RefineFn refine, const exec::CancelToken* cancel);

  /// Run the request loop until EOF, a `shutdown` request, or cancellation.
  /// Responses go to \p out (one JSON object per line, flushed at batch
  /// boundaries); \p out must carry protocol traffic only.
  /// \returns the process exit code: 0 for a clean drain (every request
  /// answered ok), 6 (degraded) when any request was shed, malformed, failed
  /// or cancelled.
  int run(std::istream& in, std::ostream& out);

 private:
  struct Request;  // parsed pending query
  void flush(std::vector<Request>& pending, std::ostream& out,
             bool cache_only);
  void respond(std::ostream& out, const std::string& line);

  std::vector<ServeScenario> catalog_;
  ServeConfig config_;
  LookupFn lookup_;
  RefineFn refine_;
  const exec::CancelToken* cancel_;
  bool degraded_ = false;
};

}  // namespace finser::surface
