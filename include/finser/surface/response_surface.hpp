#pragma once
/// \file response_surface.hpp
/// \brief Unified cached-response surface over (Vdd, temperature, cell
/// variant, energy bin).
///
/// Before this layer existed the repo had three independent cached-response
/// paths: `sram::PofTable` (per-cell POF LUT), `sram::ClusterPofSurface`
/// (joint tile surfaces) and `SerFlow`'s per-config FIT assembly. A
/// ResponseSurface sits on top of all three: it is the *output-side* grid a
/// query consumer sees — deterministic POF and FIT channels tabulated over
/// the scenario's (Vdd × energy-bin) grid, one surface per (scenario,
/// species, temperature) with the cell variant and spectrum folded into its
/// content-address fingerprint. Batch campaigns build surfaces with
/// `from_sweep` and emit their CSV rows from the surface; `finser_cli serve`
/// answers queries from the very same object (loaded back from the
/// `response_surface` artifact kind), so grid-point answers are byte-
/// identical between the two by construction.
///
/// Interpolation is byte-stable: queries go through `util::Axis::locate`
/// and a lerp that short-circuits exact nodes (frac == 0 returns the node
/// value itself, frac == 1 likewise), because IEEE-754 `v0 + 1.0*(v1-v0)`
/// is not guaranteed to reproduce `v1` bit-for-bit. The energy axis
/// interpolates in log space (the bins are geometric), the Vdd axis in
/// linear space; out-of-range queries clamp to the edge, matching the LUT
/// conventions elsewhere in the codebase.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "finser/core/ser_flow.hpp"
#include "finser/env/spectrum.hpp"
#include "finser/sram/pof_table.hpp"
#include "finser/util/interp.hpp"

namespace finser::surface {

/// ArtifactStore kind slug for serialized surfaces.
inline constexpr const char* kResponseSurfaceKind = "response_surface";

/// Interpolated POF answer at one (Vdd, energy) point.
struct PofSample {
  double tot = 0.0;
  double seu = 0.0;
  double mbu = 0.0;
  double tot_se = 0.0;
};

/// FIT answer at one Vdd point (already integrated over the spectrum).
struct FitSample {
  double tot = 0.0;
  double seu = 0.0;
  double mbu = 0.0;
};

class ResponseSurface {
 public:
  // --- identity -----------------------------------------------------------
  std::string scenario;   ///< Campaign scenario name ("" for ad-hoc flows).
  std::string species;    ///< phys::species_name of the spectrum.
  double temp_k = 0.0;    ///< Cell temperature the surface was built at [K].
  /// Content-address: FNV-1a over the fully resolved single-scenario
  /// campaign JSON plus this species' position in the scenario's species
  /// list (pipeline::response_surface_fingerprint). The species *position*
  /// matters because SerFlow draws Monte-Carlo seeds from one serial cursor
  /// across consecutive sweeps, so a species' numbers depend on what swept
  /// before it.
  std::uint64_t fingerprint = 0;

  // --- axes ---------------------------------------------------------------
  std::vector<double> vdds;          ///< Ascending supply sweep [V].
  std::vector<env::EnergyBin> bins;  ///< Ascending representative energies.

  // --- channels, indexed [mode] with mode ∈ {core::kModeWithPv,
  // --- core::kModeNominal}; POF vectors are bin-outer (b * n_vdd + v),
  // --- FIT vectors are per-Vdd.
  std::array<std::vector<double>, 2> pof_tot, pof_seu, pof_mbu, pof_tot_se;
  std::array<std::vector<double>, 2> fit_tot, fit_seu, fit_mbu;

  /// The single build path: copy the grid channels out of a finished energy
  /// sweep. Both the batch pipeline and the serve refinement path go
  /// through here, which is what makes their answers identical.
  static ResponseSurface from_sweep(std::string scenario_name, double temp_k,
                                    std::uint64_t fingerprint,
                                    const core::EnergySweepResult& sweep);

  std::size_t n_vdd() const { return vdds.size(); }
  std::size_t n_bins() const { return bins.size(); }

  /// Node accessors (no interpolation).
  double pof_at(const std::array<std::vector<double>, 2>& chan, int mode,
                std::size_t bin, std::size_t vdd) const {
    return chan[static_cast<std::size_t>(mode)][bin * n_vdd() + vdd];
  }

  /// Interpolated POF at (vdd_v, energy_mev); clamps outside the grid.
  PofSample pof(double vdd_v, double energy_mev, bool with_pv) const;

  /// Interpolated FIT at vdd_v; clamps outside the sweep range.
  FitSample fit(double vdd_v, bool with_pv) const;

  /// True iff the query coordinate coincides bitwise with a grid node (the
  /// byte-identity guarantee applies exactly to such points).
  bool is_grid_vdd(double vdd_v) const;
  bool is_grid_energy(double energy_mev) const;

  /// Structural invariants (axis sizes vs channel sizes). Throws
  /// util::Error when violated; called by decode().
  void validate() const;

  /// Versioned payload codec for the `response_surface` artifact kind (the
  /// ArtifactStore envelope supplies magic, key echo and CRC).
  std::vector<std::uint8_t> encode() const;
  static ResponseSurface decode(const std::vector<std::uint8_t>& blob);

 private:
  /// Axes are derived state rebuilt after from_sweep/decode; left empty for
  /// degenerate (single-point) dimensions, where queries collapse to the
  /// lone node.
  util::Axis vdd_axis_;
  util::Axis energy_axis_;
  void rebuild_axes();
};

/// Cell-model artifact payload (kind "cell_model"): u64 table count, then
/// each PofTable through its own codec. The model fingerprint is the
/// artifact key, so it is restored from the key on load. Hoisted from the
/// pipeline so every consumer of cached characterizations shares one codec.
std::vector<std::uint8_t> encode_cell_model(
    const sram::CellSoftErrorModel& model);
sram::CellSoftErrorModel decode_cell_model(
    const std::vector<std::uint8_t>& blob, std::uint64_t fingerprint);

}  // namespace finser::surface
