#pragma once
/// \file checkpoint.hpp
/// \brief Crash-safe checkpoint/restore for chunked Monte-Carlo runs.
///
/// A checkpoint is the set of *completed work units* of a deterministic
/// parallel region: for each finished unit index, the serialized partial
/// result (an encoded McPartial, ArrayMcResult, or PofTable). Because every
/// engine keys its RNG streams and merge order by unit index — never by
/// thread or completion order — replaying the missing units and re-reducing
/// the full index-ordered set reproduces an uninterrupted run bit-for-bit.
/// That is the resume contract: same seed + same config ⇒ identical output,
/// whether or not the run was killed and resumed in between, at any thread
/// count (docs/robustness.md).
///
/// On-disk format (version 1, host byte order; see docs/robustness.md):
///
///   magic   "FNSRCKPT"                        8 bytes
///   payload u32 version                       |
///           u64 config fingerprint            | CRC-32 covers
///           u64 n_units                       | this region
///           u64 n_blobs                       |
///           n_blobs x { u64 index, u64 size, bytes }
///   crc     u32 CRC-32 of payload             4 bytes
///
/// Files are written atomically (util::atomic_write_file), so a crash
/// mid-save leaves the previous checkpoint intact; any torn, truncated or
/// bit-flipped file fails the CRC and is discarded with a logged reason —
/// the run falls back to recomputing from scratch, never to loading bad
/// state.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "finser/exec/cancel.hpp"
#include "finser/exec/thread_pool.hpp"

namespace finser::ckpt {

/// Per-run robustness knobs, threaded from the CLI down to every engine.
struct RunOptions {
  /// Checkpoint file to write/resume ("" = checkpointing disabled).
  std::string checkpoint_path;
  /// Seconds between periodic flushes; <= 0 flushes after every unit.
  double checkpoint_interval_sec = 30.0;
  /// Cooperative cancellation token (nullptr = not cancellable). On
  /// cancellation the run flushes a final checkpoint (if enabled) and
  /// throws util::Cancelled.
  const exec::CancelToken* cancel = nullptr;

  bool checkpointing() const { return !checkpoint_path.empty(); }
  bool active() const { return checkpointing() || cancel != nullptr; }

  /// The same cancellation routed to a nested engine, without sharing the
  /// outer checkpoint file.
  RunOptions cancel_only() const {
    RunOptions inner;
    inner.cancel = cancel;
    return inner;
  }
};

/// In-memory image of a checkpoint file.
struct Checkpoint {
  std::uint64_t fingerprint = 0;
  /// One slot per work unit; an empty blob means "not completed yet".
  std::vector<std::vector<std::uint8_t>> blobs;

  std::size_t done_count() const;

  /// Atomically write to \p path. Returns false (reason in \p error) on I/O
  /// failure. Fires the `kill_after_flush` fault site after a successful
  /// write (the kill-and-resume test hinges on this being *after*).
  bool save(const std::string& path, std::string* error = nullptr) const;

  /// Load and validate \p path. Returns false with a human-readable
  /// \p reason on any problem — missing file, bad magic/version, CRC
  /// mismatch, fingerprint/unit-count mismatch, malformed records — and
  /// never throws: a bad checkpoint always degrades to a cold start.
  static bool try_load(const std::string& path,
                       std::uint64_t expected_fingerprint,
                       std::size_t expected_units, Checkpoint& out,
                       std::string* reason = nullptr);
};

/// Result of run_units() / run_units_adaptive(): the completed units' blobs
/// in index order. run_units always completes every unit; the adaptive
/// variant may stop at a round boundary, in which case blobs holds exactly
/// the completed prefix.
struct UnitRunResult {
  std::vector<std::vector<std::uint8_t>> blobs;
  std::size_t reused = 0;     ///< Units restored from the checkpoint.
  std::size_t completed = 0;  ///< Units computed or restored (= blobs.size()).
  bool stopped_early = false; ///< Adaptive runs only: converged before n_units.
};

/// Computes one work unit's serialized partial. The ChunkRange spans exactly
/// one unit (index == begin, end == begin + 1); must return a non-empty blob.
using UnitFn = std::function<std::vector<std::uint8_t>(const exec::ChunkRange&)>;

/// Run \p n_units independent work units on \p pool with checkpoint/resume
/// and cooperative cancellation per \p run:
///
///  - A valid checkpoint at run.checkpoint_path (matching \p fingerprint and
///    \p n_units) seeds the completed set; an invalid one is discarded with
///    a warning to stderr and everything is recomputed.
///  - Completed blobs are flushed to the checkpoint at most every
///    checkpoint_interval_sec (<= 0: after every unit), and once more on
///    cancellation or error.
///  - Cancellation stops at the next unit boundary and throws
///    util::Cancelled after the final flush; no partial-unit state is ever
///    recorded.
///  - On success the checkpoint file is removed and all blobs returned in
///    index order, restored and fresh alike — callers decode and reduce them
///    pairwise exactly as an uninterrupted run would.
UnitRunResult run_units(exec::ThreadPool& pool, std::size_t n_units,
                        std::uint64_t fingerprint, const RunOptions& run,
                        const UnitFn& compute);

/// Round schedule of run_units_adaptive(): units are computed in
/// deterministic geometric rounds and the convergence predicate runs only at
/// round boundaries — a pure function of (n_units, schedule), never of the
/// thread/worker schedule that executes it.
struct AdaptiveSchedule {
  std::size_t min_units = 8;  ///< Units before the first decision.
  double growth = 2.0;        ///< Round-size growth factor (>= 1).
};

/// Boundaries b_0 < b_1 < ... = n_units of the adaptive rounds:
/// b_0 = min(n_units, max(1, min_units)), b_{k+1} = min(n_units,
/// max(b_k + 1, ceil(b_k * growth))).
std::vector<std::size_t> round_boundaries(std::size_t n_units,
                                          const AdaptiveSchedule& schedule);

/// Convergence predicate of run_units_adaptive(): called at a round boundary
/// with the blobs of units [0, done) (in index order; later slots are
/// empty). Must be a pure function of the blob contents so the stopping
/// decision is identical at any thread count, worker count, and across
/// kill/resume.
using ConvergedFn = std::function<bool(
    std::size_t done, const std::vector<std::vector<std::uint8_t>>& blobs)>;

/// Adaptive variant of run_units(): computes units round by round and stops
/// at the first boundary b < n_units where \p converged(b, blobs) is true
/// (never before min_units, never mid-round). Checkpoint/resume and
/// cancellation behave exactly as in run_units — the checkpoint keeps one
/// slot per *potential* unit, so a resumed run replays the same rounds,
/// re-evaluates the same prefix statistics, and reaches the same stopping
/// boundary; the returned blobs are the completed prefix in index order.
UnitRunResult run_units_adaptive(exec::ThreadPool& pool, std::size_t n_units,
                                 std::uint64_t fingerprint,
                                 const RunOptions& run,
                                 const AdaptiveSchedule& schedule,
                                 const UnitFn& compute,
                                 const ConvergedFn& converged);

}  // namespace finser::ckpt
