#pragma once
/// \file straggling.hpp
/// \brief Energy-loss fluctuation (straggling) models.
///
/// A 10 nm fin is an extremely thin absorber: the *mean* energy loss from
/// the stopping power is only the first moment of a broad distribution.
/// Geant4 samples this microscopically; finser offers three models:
///
///  * kNone      — deterministic CSDA loss (useful for deterministic tests);
///  * kGaussian  — Bohr straggling, variance Ω² = 0.1569·z_eff²·(Z/A)·ρℓ
///                 [MeV², ρℓ in g/cm²]; adequate when many collisions occur;
///  * kMoyal     — Landau-like skewed distribution approximated by the Moyal
///                 density, scale ξ = (K/2)·z_eff²·(Z/A)·ρℓ/β² — the
///                 thin-absorber regime. Sampled exactly via
///                 X = mode + ξ·(−ln Z²), Z ~ N(0,1);
///  * kAuto      — physically selected per segment by the Vavilov
///                 significance parameter κ = ξ/T_max: slow heavy particles
///                 in a fin have κ ≫ 1 (many small transfers → Gaussian),
///                 relativistic ones κ ≪ 1 (rare large delta rays → Moyal).
///                 This regime split is exactly what makes low-energy-proton
///                 upsets collapse with Vdd while fast particles retain a
///                 rare-event tail. **Default everywhere.**
///
/// All samples are clamped to [0, available energy].

#include "finser/phys/material.hpp"
#include "finser/phys/particle.hpp"
#include "finser/stats/rng.hpp"

namespace finser::phys {

/// Which fluctuation model to apply around the mean energy loss.
enum class StragglingModel {
  kNone,
  kGaussian,
  kMoyal,
  kAuto,
};

/// Vavilov significance parameter κ = ξ / T_max for a path of \p length_nm.
double vavilov_kappa(Species s, double e_mev, double length_nm, const Material& m);

/// Bohr straggling standard deviation [MeV] for a path of \p length_nm.
double bohr_sigma_mev(Species s, double e_mev, double length_nm, const Material& m);

/// Landau/Moyal scale parameter ξ [MeV] for a path of \p length_nm.
double landau_xi_mev(Species s, double e_mev, double length_nm, const Material& m);

/// Sample the actual energy loss around \p mean_loss_mev for a segment of
/// \p length_nm, clamped to [0, e_mev].
double sample_energy_loss(StragglingModel model, stats::Rng& rng, Species s,
                          double e_mev, double mean_loss_mev, double length_nm,
                          const Material& m);

}  // namespace finser::phys
