#pragma once
/// \file collection.hpp
/// \brief Charge generation and drift-collection model (paper Sec. 3.3).
///
/// SOI FinFETs collect radiation-deposited charge by **drift only**: the BOX
/// suppresses the diffusion component that dominates in bulk devices. The
/// paper models the resulting parasitic current as a rectangular pulse whose
/// width equals the source-drain carrier transit time
///     τ = L_fin² / (μ_e · V_ds)                                   (Eq. 2)
/// and whose amplitude is
///     I = Q / τ = n_e·e / τ                                       (Eq. 3)
/// which is justified because the particle passage time (Eq. 1, < 1 fs) and
/// the recombination time (≥ 1 ns) bracket τ (≈ 10 fs) on both sides.

#include "finser/phys/material.hpp"

namespace finser::phys {

/// Fin geometry and transport parameters of the 14 nm SOI FinFET node
/// (defaults from Wang et al., IEEE Design & Test 2013 — the paper's ref [28]).
struct FinTechnology {
  double w_fin_nm = 10.0;  ///< Fin width (particle passage dimension, Eq. 1).
  double l_fin_nm = 20.0;  ///< Gate length = drift distance (Eq. 2).
  double h_fin_nm = 26.0;  ///< Fin height.
  double electron_mobility_cm2_vs = 400.0;  ///< Effective channel mobility.

  /// Collecting silicon volume of one fin [nm^3].
  double fin_volume_nm3() const { return w_fin_nm * l_fin_nm * h_fin_nm; }
};

/// Electron transit time between source and drain [fs] (Eq. 2).
/// \p vds_v must be positive (sensitive transistors have Vds = Vdd).
double transit_time_fs(const FinTechnology& tech, double vds_v);

/// Number of e-h pairs from \p deposited_mev of ionizing energy in \p m
/// (0 for non-collecting materials).
double eh_pairs_from_energy(double deposited_mev, const Material& m);

/// Collected charge [fC] for \p eh_pairs electron-hole pairs.
double charge_fc_from_pairs(double eh_pairs);

/// Rectangular drift-collection current pulse.
struct CurrentPulse {
  double amplitude_a = 0.0;  ///< Pulse height [A].
  double width_fs = 0.0;     ///< Pulse width = transit time [fs].

  /// Total collected charge [fC] (area under the pulse).
  double charge_fc() const;
};

/// Build the paper's Eq. 3 pulse from a deposited pair count.
CurrentPulse drift_pulse(double eh_pairs, const FinTechnology& tech, double vds_v);

}  // namespace finser::phys
