#pragma once
/// \file stopping.hpp
/// \brief Stopping-power models (the analytic core of the Geant4 substitute).
///
/// The paper obtains per-fin energy deposition from Geant4 Monte-Carlo
/// transport. finser replaces that with analytic stopping powers:
///
///  * **Protons**: Bethe–Bloch above 1 MeV; below 0.5 MeV a
///    Varelas–Biersack-type interpolation between a velocity-proportional
///    (Lindhard–Scharff) term and a shaped high-energy term, with
///    coefficients calibrated to PSTAR silicon anchor points
///    (S(10 keV) ≈ 285, peak S(~80 keV) ≈ 530, S(0.5 MeV) ≈ 270,
///    S(1 MeV) ≈ 175 MeV·cm²/g); log-energy blend between the branches.
///  * **Alphas**: effective-charge velocity scaling of the proton curve,
///    S_α(E) = z_eff(β)² · S_p(E · m_p/m_α), with the Barkas effective
///    charge z_eff = 2·(1 − exp(−125·β·2^(−2/3))). Reproduces ASTAR silicon
///    within ~25 % and — more importantly for this normalized study — the
///    correct Bragg-peak position (~0.7 MeV) and alpha/proton ratio.
///  * **Nuclear stopping**: ZBL universal reduced stopping; counted as
///    *non-ionizing* energy loss (no e-h pairs), relevant only below
///    ~100 keV.
///
/// All mass stopping powers are in MeV·cm²/g; linear stopping in MeV/cm.

#include "finser/phys/material.hpp"
#include "finser/phys/particle.hpp"

namespace finser::phys {

/// Electronic (ionizing) mass stopping power [MeV·cm²/g].
double electronic_stopping(Species s, double e_mev, const Material& m);

/// ZBL universal nuclear (non-ionizing) mass stopping power [MeV·cm²/g].
double nuclear_stopping(Species s, double e_mev, const Material& m);

/// Electronic + nuclear mass stopping power [MeV·cm²/g].
double total_stopping(Species s, double e_mev, const Material& m);

/// Linear electronic stopping power [MeV/cm] = mass stopping × density.
double linear_electronic_stopping(Species s, double e_mev, const Material& m);

/// Electronic energy loss [MeV] over a path of \p length_nm through \p m in
/// the continuous-slowing-down approximation, sub-stepped so that no step
/// loses more than ~5 % of the running energy. Clamped to at most \p e_mev.
double csda_energy_loss(Species s, double e_mev, double length_nm, const Material& m);

/// CSDA range [um]: path length to slow from \p e_mev down to \p e_cut_mev.
double csda_range_um(Species s, double e_mev, const Material& m,
                     double e_cut_mev = 1e-3);

/// Barkas-style effective charge for species \p s at kinetic energy \p e_mev.
double effective_charge(Species s, double e_mev);

/// Lindhard-Robinson ionization efficiency of the nuclear energy-loss
/// channel for species \p s in medium \p m: the fraction of nuclear
/// (recoil-cascade) energy that ends up as ionization rather than phonons.
/// Fast recoils → 1, slow recoils → 0; ~0.49 for 100 keV Si in Si.
double lindhard_partition(Species s, double e_mev, const Material& m);

/// Overall ionizing fraction of the local energy loss at \p e_mev:
/// (S_el + q_Lindhard·S_nuc) / (S_el + S_nuc). ≈1 for protons/alphas above
/// 100 keV; substantially below 1 for slow heavy recoils.
double ionizing_fraction(Species s, double e_mev, const Material& m);

}  // namespace finser::phys
