#pragma once
/// \file fin_mc.hpp
/// \brief Device-level single-fin strike Monte Carlo (paper Sec. 3.2, Fig. 4).
///
/// The paper runs 10 million Geant4 histories per energy point against the
/// 3-D structure of a single fin, "with different particle directions and
/// positions", and stores the resulting electron counts in LUTs. This class
/// is that step: strikes are sampled with the classic isotropic-chord scheme
/// (uniform direction + uniform offset on a perpendicular disc enclosing the
/// fin), which for a convex body yields the exact mean-chord-length
/// distribution (⟨ℓ⟩ = 4V/S — property-tested). Each hit is transported with
/// the configured straggling model and the e-h pair count recorded.

#include <cstddef>

#include "finser/geom/aabb.hpp"
#include "finser/phys/particle.hpp"
#include "finser/phys/straggling.hpp"
#include "finser/stats/rng.hpp"
#include "finser/util/interp.hpp"

namespace finser::phys {

/// Aggregate over the strikes that geometrically hit the fin.
struct FinStrikeStats {
  double mean_eh_pairs = 0.0;     ///< Mean pairs per hitting strike.
  double stderr_eh_pairs = 0.0;   ///< Standard error of that mean.
  double mean_chord_nm = 0.0;     ///< Mean chord length of hitting strikes.
  double hit_fraction = 0.0;      ///< Hits / sampled rays.
  std::size_t hits = 0;
};

/// Single-fin strike simulator.
class FinStrikeMc {
 public:
  struct Config {
    StragglingModel straggling = StragglingModel::kAuto;
    std::size_t samples = 20000;  ///< Rays per energy point.
  };

  /// \param fin_box the fin's silicon body in nm coordinates.
  explicit FinStrikeMc(const geom::Aabb& fin_box);
  FinStrikeMc(const geom::Aabb& fin_box, const Config& config);

  /// Run the MC at one kinetic energy.
  FinStrikeStats run(Species s, double e_mev, stats::Rng& rng) const;

  /// Build the paper's Fig.-4 LUT: mean e-h pairs vs energy on a log axis
  /// from \p e_lo_mev to \p e_hi_mev with \p points entries.
  util::Grid1 build_lut(Species s, double e_lo_mev, double e_hi_mev,
                        std::size_t points, stats::Rng& rng) const;

  const geom::Aabb& fin_box() const { return fin_; }

 private:
  geom::Aabb fin_;
  Config config_;
  double enclosing_radius_nm_ = 0.0;
};

}  // namespace finser::phys
