#pragma once
/// \file neutron.hpp
/// \brief Neutron-induced indirect ionization (the paper's Sec.-7 future work).
///
/// Atmospheric neutrons are uncharged: they upset SRAMs only through the
/// charged secondaries of nuclear reactions with silicon (paper Sec. 3.1,
/// "indirect ionization"). This module implements a compact n-28Si reaction
/// model with the three channels that dominate the soft-error response:
///
///  * **elastic scattering** n + 28Si → n + 28Si*: isotropic-in-CM recoil,
///    E_R ≤ 4·m_n·M/(m_n+M)² · E_n ≈ 0.133·E_n;
///  * **(n,α)** 28Si(n,α)25Mg, Q = −2.654 MeV (threshold ≈ 2.75 MeV):
///    an energetic alpha plus a heavy Mg recoil, emitted back-to-back in CM;
///  * **(n,p)** 28Si(n,p)28Al, Q = −3.860 MeV (threshold ≈ 4.0 MeV):
///    an energetic proton plus a slow Al recoil (transported with the Si
///    recoil stopping model — 1 amu / 1 charge unit apart).
///
/// Cross sections are smooth log-log fits to the ENDF/B natSi evaluations
/// (resonance structure averaged out — the array MC integrates over broad
/// spectra anyway). Secondaries are handed to the standard charged-particle
/// Transporter, so recoil straggling, Lindhard partition and multi-fin
/// charge sharing all apply unchanged.

#include <vector>

#include "finser/geom/vec3.hpp"
#include "finser/phys/particle.hpp"
#include "finser/stats/rng.hpp"

namespace finser::phys {

/// One charged reaction product in the lab frame.
struct NeutronSecondary {
  Species species = Species::kSiRecoil;
  double energy_mev = 0.0;
  geom::Vec3 direction;  ///< Unit vector, lab frame.
};

/// Reaction channels of the model.
enum class NeutronChannel { kElastic, kNAlpha, kNProton };

/// Products of one sampled interaction.
struct NeutronInteraction {
  NeutronChannel channel = NeutronChannel::kElastic;
  std::vector<NeutronSecondary> secondaries;
};

/// Compact n-28Si interaction model.
class NeutronInteractionModel {
 public:
  NeutronInteractionModel();

  /// Channel cross sections [barn] at neutron energy \p e_n_mev.
  double elastic_barn(double e_n_mev) const;
  double n_alpha_barn(double e_n_mev) const;
  double n_proton_barn(double e_n_mev) const;
  double total_barn(double e_n_mev) const;

  /// Macroscopic cross section in silicon [1/cm].
  double macroscopic_per_cm(double e_n_mev) const;

  /// Mean free path in silicon [um].
  double mean_free_path_um(double e_n_mev) const;

  /// Sample one interaction of a neutron travelling along \p n_dir (unit).
  /// Valid for e_n_mev within the tabulated range (20 keV .. 1 GeV).
  NeutronInteraction sample(double e_n_mev, const geom::Vec3& n_dir,
                            stats::Rng& rng) const;

  /// Maximum elastic silicon-recoil energy [MeV] (kinematic limit).
  static double max_recoil_energy_mev(double e_n_mev);

  /// Reaction Q-values [MeV].
  static constexpr double kQnAlphaMeV = -2.654;
  static constexpr double kQnProtonMeV = -3.860;
};

}  // namespace finser::phys
