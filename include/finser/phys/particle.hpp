#pragma once
/// \file particle.hpp
/// \brief Particle species treated by the direct-ionization analysis.
///
/// The paper's scope (Sec. 3.1, Sec. 7) is direct ionization by low-energy
/// **protons** (atmospheric) and **alpha particles** (terrestrial, from
/// package contamination); neutron indirect ionization is explicitly left
/// to future work. Kinematics here are relativistic throughout, although
/// the energies of interest (< 100 MeV) are mildly relativistic at most.

#include <string_view>

namespace finser::phys {

/// Particle species treated by the transport machinery. Protons and alphas
/// ionize directly (the paper's scope); the silicon and magnesium recoils
/// are the charged secondaries of neutron interactions (the paper's stated
/// future work, implemented in phys/neutron.hpp).
enum class Species {
  kProton,
  kAlpha,
  kSiRecoil,  ///< 28Si primary knock-on atom (elastic n-Si scattering).
  kMgRecoil,  ///< 25Mg residual of the 28Si(n,alpha)25Mg reaction.
  kNeutron,   ///< Uncharged: zero stopping power; upsets only via secondaries.
};

/// Rest energy [MeV].
double mass_mev(Species s);

/// Charge number z (proton: 1, alpha: 2).
double charge_number(Species s);

/// Human-readable name ("proton" / "alpha").
std::string_view species_name(Species s);

/// Relativistic beta = v/c for kinetic energy \p e_mev (>= 0).
double beta(Species s, double e_mev);

/// Relativistic gamma for kinetic energy \p e_mev.
double gamma(Species s, double e_mev);

/// beta * gamma.
double beta_gamma(Species s, double e_mev);

/// Particle speed [cm/s].
double speed_cm_per_s(Species s, double e_mev);

/// Time to traverse \p length_nm at the current speed [fs]
/// (paper Eq. 1: the particle passage time through the fin).
double passage_time_fs(Species s, double e_mev, double length_nm);

/// Kinematic maximum energy transferable to a single electron [MeV]:
/// T_max = 2 m_e c² β²γ² / (1 + 2γ m_e/M + (m_e/M)²).
double max_energy_transfer_mev(Species s, double e_mev);

}  // namespace finser::phys
