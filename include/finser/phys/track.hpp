#pragma once
/// \file track.hpp
/// \brief Particle-track transport through a set of fins (Geant4 substitute).
///
/// Given a ray (in nm coordinates), a particle species and a kinetic energy,
/// the Transporter walks the track through the die: collecting silicon fin
/// boxes deposit ionizing energy that converts to e-h pairs (3.6 eV/pair);
/// the inter-fin dielectric background only degrades the particle's energy.
/// Energy is degraded continuously (CSDA with sub-stepping) and fluctuated
/// per segment by the configured straggling model, so a single grazing track
/// can cross fins of several cells with *correlated*, *ordered* deposits —
/// exactly the mechanism that produces MBUs in the paper's array analysis.

#include <cstdint>
#include <memory>
#include <vector>

#include "finser/geom/box_set.hpp"
#include "finser/phys/material.hpp"
#include "finser/phys/particle.hpp"
#include "finser/phys/straggling.hpp"
#include "finser/stats/rng.hpp"

namespace finser::phys {

/// Ionizing energy deposited in one fin by one track.
struct FinDeposit {
  std::uint32_t fin_id = 0;
  double path_nm = 0.0;       ///< Chord length through the fin.
  double energy_mev = 0.0;    ///< Sampled ionizing energy deposit.
  double eh_pairs = 0.0;      ///< Generated electron-hole pairs.
};

/// Outcome of transporting one particle.
struct TrackResult {
  std::vector<FinDeposit> deposits;  ///< In track order; only fins actually hit.
  double exit_energy_mev = 0.0;      ///< Remaining energy when leaving the world.
  bool stopped_inside = false;       ///< True if the particle ranged out in the die.
};

/// Transport engine over an immutable fin BoxSet.
class Transporter {
 public:
  struct Config {
    StragglingModel straggling = StragglingModel::kAuto;
    double cutoff_mev = 1e-5;  ///< Track abandoned below this energy (10 eV).
    const Material* fin_material = nullptr;         ///< Default: silicon().
    const Material* background_material = nullptr;  ///< Default: silicon_dioxide().
  };

  /// \param fins collecting boxes; must stay alive and unmodified.
  explicit Transporter(const geom::BoxSet& fins);
  Transporter(const geom::BoxSet& fins, const Config& config);

  Transporter(const Transporter&) = delete;
  Transporter& operator=(const Transporter&) = delete;

  /// Transport one particle; deterministic given \p rng state.
  TrackResult transport(const geom::Ray& ray, Species s, double e_mev,
                        stats::Rng& rng);

  const geom::BoxSet& fins() const { return *fins_; }

 private:
  const geom::BoxSet* fins_;
  Config config_;
  std::unique_ptr<geom::UniformGrid> grid_;
  std::vector<geom::BoxHit> scratch_hits_;
};

}  // namespace finser::phys
