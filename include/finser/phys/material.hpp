#pragma once
/// \file material.hpp
/// \brief Target materials of the SOI FinFET stack.
///
/// The stack the paper simulates (Fig. 3a) is: silicon fin on a buried
/// oxide (BOX) over a silicon substrate, with oxide/dielectric filling
/// between fins. Only energy deposited **inside a fin** produces collectable
/// charge (the BOX blocks diffusion collection from the substrate —
/// Sec. 3.3); other materials still slow the particle down, which matters
/// for grazing multi-cell tracks (MBU).

#include <string>

namespace finser::phys {

/// Bulk material description sufficient for stopping-power evaluation.
struct Material {
  std::string name;

  /// Effective Z/A [mol/g] (sum of atomic numbers / molar mass for compounds).
  double z_over_a = 0.0;

  /// Mass density [g/cm^3].
  double density_g_cm3 = 0.0;

  /// Mean excitation energy I [eV].
  double mean_excitation_ev = 0.0;

  /// Energy per generated electron-hole pair [eV]; 0 when the material does
  /// not produce collectable charge (insulators in this model).
  double eh_pair_energy_ev = 0.0;

  /// Atomic number of the (dominant) target element, used by the nuclear
  /// stopping model.
  double z_nuclear = 14.0;

  /// Molar mass of the (dominant) target element [g/mol].
  double a_nuclear = 28.0855;

  /// True if deposited ionization energy converts to collectable e-h pairs.
  bool collects_charge() const { return eh_pair_energy_ev > 0.0; }
};

/// Crystalline silicon (fin, substrate).
const Material& silicon();

/// Thermal SiO2 (BOX, STI, spacer fill). Treated as non-collecting.
const Material& silicon_dioxide();

}  // namespace finser::phys
