#pragma once
/// \file exec.hpp
/// \brief Execution configuration of the parallel Monte-Carlo layer.
///
/// Every MC engine in finser (array MC, neutron MC, cell characterization,
/// the spectrum sweep) runs its hot loop through finser::exec. The thread
/// count is resolved uniformly:
///
///   1. an explicit non-zero `threads` in the engine's config wins;
///   2. else the FINSER_THREADS environment variable (a positive integer);
///   3. else std::thread::hardware_concurrency().
///
/// The resolved count never affects results: the engines derive one RNG
/// stream per fixed-size chunk of work (stats::Rng::stream) and merge chunk
/// partials in chunk order, so a campaign is bit-identical at any thread
/// count (see docs/parallelism.md for the contract).

#include <cstddef>

namespace finser::exec {

/// Execution knobs shared by the parallel engines.
struct ExecConfig {
  /// Worker-thread count; 0 = auto (FINSER_THREADS, else hardware).
  std::size_t threads = 0;
};

/// std::thread::hardware_concurrency(), floored at 1.
std::size_t hardware_threads();

/// FINSER_THREADS as a positive integer; 0 when unset. Malformed or
/// non-positive values are rejected with a warning on stderr (they would
/// otherwise silently serialize or oversubscribe a campaign).
std::size_t threads_from_env();

/// Resolve a requested thread count through the precedence above.
std::size_t resolve_threads(std::size_t requested);

}  // namespace finser::exec
