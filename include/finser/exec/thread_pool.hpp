#pragma once
/// \file thread_pool.hpp
/// \brief Deterministic chunked thread pool + pairwise reduction.
///
/// The pool is deliberately work-stealing-free: a parallel region splits
/// `n_items` into fixed-size chunks and the workers claim chunk *indices*
/// from a single atomic counter. Which thread executes which chunk is
/// scheduling noise; everything an engine needs for reproducibility is keyed
/// by the chunk index (RNG stream id, partial-result slot), so results are
/// bit-identical for 1 and N threads. parallel_reduce() completes the
/// pattern: per-chunk partials land in an index-addressed vector and are
/// merged by a deterministic pairwise tree, never in completion order.

#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "finser/exec/cancel.hpp"
#include "finser/util/error.hpp"

namespace finser::exec {

/// One chunk of a parallel region.
struct ChunkRange {
  std::size_t index;   ///< Chunk index — the deterministic key.
  std::size_t begin;   ///< First item of the chunk.
  std::size_t end;     ///< One past the last item.
  std::size_t worker;  ///< Executing worker slot in [0, thread_count()).
};

/// Chunked fork-join pool. Worker threads persist across regions; the
/// calling thread participates as worker slot 0, so a pool with
/// thread_count() == 1 runs regions inline with zero synchronization
/// overhead. Regions must not be launched from inside the pool's own
/// workers (nest by giving inner engines their own pool / thread budget).
class ThreadPool {
 public:
  /// \param threads total concurrency including the caller;
  ///        0 = resolve_threads(0) (FINSER_THREADS, else hardware).
  explicit ThreadPool(std::size_t threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total concurrency of a region (workers + the calling thread).
  std::size_t thread_count() const { return workers_count_ + 1; }

  /// Run \p fn over ceil(n_items / chunk) chunks and block until the region
  /// drains. The first exception thrown by \p fn aborts the region
  /// (remaining chunks are skipped) and is rethrown here.
  ///
  /// If \p cancel is non-null, workers poll it before claiming each chunk
  /// and stop at the next chunk boundary once it fires; chunks already
  /// started still run to completion, so the region never leaves
  /// partial-chunk state behind. Returns true iff every chunk executed
  /// (false means the region was cancelled; the set of executed chunk
  /// indices is whatever \p fn recorded).
  bool parallel_for_chunks(std::size_t n_items, std::size_t chunk,
                           const std::function<void(const ChunkRange&)>& fn,
                           const CancelToken* cancel = nullptr);

 private:
  struct Impl;
  Impl* impl_;
  std::size_t workers_count_;
};

/// Deterministic pairwise tree reduction: merges (0,1), (2,3), ... and
/// repeats until one value remains. Independent of how \p parts were
/// produced, and numerically better-conditioned than a left fold for long
/// chains of Welford merges.
template <typename T, typename MergeFn>
T reduce_pairwise(std::vector<T> parts, MergeFn merge) {
  FINSER_REQUIRE(!parts.empty(), "reduce_pairwise: nothing to reduce");
  while (parts.size() > 1) {
    std::size_t out = 0;
    for (std::size_t i = 0; i + 1 < parts.size(); i += 2) {
      parts[out++] = merge(std::move(parts[i]), std::move(parts[i + 1]));
    }
    if (parts.size() % 2 == 1) parts[out++] = std::move(parts.back());
    parts.resize(out);
  }
  return std::move(parts.front());
}

/// Map every chunk to a partial (any schedule), then reduce the partials
/// pairwise in chunk-index order. T must be default-constructible; \p map is
/// (const ChunkRange&) -> T, \p merge is (T, T) -> T.
template <typename T, typename MapFn, typename MergeFn>
T parallel_reduce(ThreadPool& pool, std::size_t n_items, std::size_t chunk,
                  MapFn&& map, MergeFn&& merge) {
  FINSER_REQUIRE(n_items > 0 && chunk > 0, "parallel_reduce: empty region");
  const std::size_t n_chunks = (n_items + chunk - 1) / chunk;
  std::vector<T> parts(n_chunks);
  pool.parallel_for_chunks(n_items, chunk, [&](const ChunkRange& r) {
    parts[r.index] = map(r);
  });
  return reduce_pairwise(std::move(parts), std::forward<MergeFn>(merge));
}

}  // namespace finser::exec
