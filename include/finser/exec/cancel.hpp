#pragma once
/// \file cancel.hpp
/// \brief Cooperative cancellation for long-running parallel regions.
///
/// A CancelToken is a single atomic flag shared between a controller (signal
/// handler, test, outer engine) and the workers of a parallel region. The
/// workers poll it *between* chunks — never mid-chunk — so cancellation can
/// only be observed at a chunk boundary and every chunk either ran to
/// completion or not at all. That invariant is what makes checkpointed state
/// safe: a cancelled run holds no partial-chunk results. There is no
/// pthread_kill / thread interruption anywhere; everything is a relaxed
/// handshake on one atomic bool.

#include <atomic>

namespace finser::exec {

/// Set-once (resettable) cancellation flag. All members are async-signal-safe
/// and thread-safe; a signal handler may call cancel() directly.
class CancelToken {
 public:
  void cancel() noexcept { flag_.store(true, std::memory_order_release); }
  bool cancelled() const noexcept { return flag_.load(std::memory_order_acquire); }
  void reset() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

/// Route SIGINT and SIGTERM to \p token->cancel(). The handler performs one
/// atomic store plus the child fan-out below — both async-signal-safe. \p
/// token must outlive the installation. Passing nullptr restores the default
/// disposition for both signals.
void install_signal_cancel(CancelToken* token);

/// Register a child process for signal fan-out: while registered, a SIGINT
/// or SIGTERM handled by install_signal_cancel is also forwarded to the
/// child as SIGTERM (kill() is async-signal-safe), so a supervisor's
/// cooperative shutdown reaches its whole worker tree in one keystroke.
/// The table is a fixed array of atomics (no allocation in the handler
/// path); returns false when it is full. Idempotent per pid.
bool signal_fanout_add(int pid);

/// Remove \p pid from the fan-out table (e.g. after waitpid reaped it).
/// Unknown pids are ignored.
void signal_fanout_remove(int pid);

}  // namespace finser::exec
