#pragma once
/// \file progress.hpp
/// \brief Thread-safe, rate-limited progress reporting for the MC engines.
///
/// ProgressSink replaces the old single-threaded string-callback progress
/// hook: work units are counted on an atomic, message emission is serialized
/// behind a mutex and throttled (tick floods from thousands of parallel
/// chunks collapse into one line every `min_interval`), and the sink is a
/// cheap shared-state handle, so engines can pass it by value into worker
/// lambdas. A default-constructed sink is disabled and every call on it is a
/// no-op, which keeps engine code free of null checks.

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <type_traits>
#include <utility>

namespace finser::exec {

/// Shared-state progress handle (copy = same sink).
class ProgressSink {
 public:
  using MessageFn = std::function<void(const std::string&)>;

  /// Disabled sink: all calls are no-ops.
  ProgressSink() = default;

  /// Sink forwarding to \p fn, throttled to one tick line per
  /// \p min_interval. message() is never throttled.
  ProgressSink(MessageFn fn, std::chrono::milliseconds min_interval);

  /// Convenience: any callable taking `const std::string&`, default
  /// throttle (250 ms). Implicit so existing lambda call sites keep working.
  template <typename F,
            typename = std::enable_if_t<
                !std::is_same_v<std::decay_t<F>, ProgressSink> &&
                std::is_invocable_v<F&, const std::string&>>>
  ProgressSink(F&& fn)  // NOLINT(google-explicit-constructor)
      : ProgressSink(MessageFn(std::forward<F>(fn)),
                     std::chrono::milliseconds(250)) {}

  /// True when the sink forwards anywhere (lets callers skip building
  /// expensive strings for a disabled sink).
  explicit operator bool() const { return state_ != nullptr; }

  /// Emit one message unconditionally (thread-safe, not rate-limited).
  void message(const std::string& m) const;

  /// Begin a counted phase: resets the tick counter and names the lines
  /// tick() emits ("label 1234/40000").
  void start_phase(const std::string& label, std::uint64_t total) const;

  /// Count \p n finished work units; emits a rate-limited progress line, and
  /// always emits the final line when the phase total is reached.
  void tick(std::uint64_t n = 1) const;

  /// Work units counted since the last start_phase().
  std::uint64_t completed() const;

 private:
  struct State;
  std::shared_ptr<State> state_;
};

}  // namespace finser::exec
