#pragma once
/// \file set_chain.hpp
/// \brief Single-event transients (SETs) in combinational logic.
///
/// The paper's circuit-level related work ([14] characterizes SRAM cells,
/// inverters and logic chains; [15] adds electrical and latching-window
/// masking) treats the combinational counterpart of the SRAM upset: a
/// particle strike on a logic node creates a voltage glitch that must
/// (a) be large enough to be a valid logic excursion,
/// (b) survive **electrical masking** — propagation through downstream
///     gates attenuates pulses narrower than roughly twice the gate delay,
/// (c) arrive inside a flip-flop's **latching window** to be captured.
///
/// finser models (a)+(b) with its SPICE engine on an inverter chain built
/// from the same 14 nm FinFET cards as the SRAM cell, and (c) with the
/// standard window/period probability. Logic SER then composes with the
/// device-level charge spectra exactly like the SRAM flow.

#include <cstddef>

#include "finser/phys/collection.hpp"
#include "finser/spice/circuit.hpp"
#include "finser/spice/devices.hpp"

namespace finser::logic {

/// Electrical design of the inverter chain.
struct ChainDesign {
  const spice::FinFetModel* nfet = nullptr;  ///< Default: default_nfet().
  const spice::FinFetModel* pfet = nullptr;  ///< Default: default_pfet().
  double nfin_n = 1.0;
  double nfin_p = 1.0;
  double cload_f = 0.05e-15;  ///< Per-stage node load (wire + fanout) [F].
  std::size_t stages = 8;     ///< Inverters between the struck node and the sink.
  phys::FinTechnology tech;   ///< Fin geometry (strike pulse width).
};

/// Outcome of one SET injection.
struct SetOutcome {
  bool propagated = false;    ///< Output crossed mid-rail (valid glitch).
  double width_out_s = 0.0;   ///< Output glitch width at the mid-rail crossings.
  double peak_excursion_v = 0.0;  ///< Max deviation of the output from its
                                  ///< quiescent level.
};

/// Reusable SET injection simulator on an inverter chain.
class SetChainSimulator {
 public:
  SetChainSimulator(const ChainDesign& design, double vdd_v);

  SetChainSimulator(const SetChainSimulator&) = delete;
  SetChainSimulator& operator=(const SetChainSimulator&) = delete;

  /// Inject \p q_fc at the first chain node (worst case: furthest from the
  /// sink, maximum attenuation opportunity) and observe the chain output.
  SetOutcome inject(double q_fc);

  /// Smallest charge whose glitch still propagates to the output.
  double critical_charge_fc(double q_max_fc = 1.0, double tol_fc = 1e-3);

  double vdd() const { return vdd_v_; }
  const ChainDesign& design() const { return design_; }

 private:
  ChainDesign design_;
  double vdd_v_;
  double tau_s_;

  spice::Circuit circuit_;
  std::vector<std::size_t> nodes_;  ///< Chain nodes, [0] = struck node.
  spice::PulseISource* strike_ = nullptr;
  bool victim_high_ = true;  ///< Quiescent level of the struck node.
  bool output_high_ = true;  ///< Quiescent level of the output node.
};

/// Latching-window masking: the probability that a glitch of width \p
/// pulse_width_s arriving at a flip-flop with sampling window \p
/// latch_window_s and clock period \p clk_period_s is captured
/// (P = clamp((w + t_w) / T_clk, 0, 1) — the classic derating).
double latch_capture_probability(double pulse_width_s, double clk_period_s,
                                 double latch_window_s);

}  // namespace finser::logic
