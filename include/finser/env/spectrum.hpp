#pragma once
/// \file spectrum.hpp
/// \brief Ground-level radiation environment (paper Sec. 3.1, Fig. 2).
///
/// Two direct-ionization sources matter at sea level:
///  * **Protons** (atmospheric): a steeply falling differential spectrum
///    (paper Fig. 2a, after Hagmann et al.'s CRY cosmic-ray cascades). The
///    tabulated shape below follows CRY's sea-level proton curve; the
///    absolute scale of the low-energy end (which dominates direct-
///    ionization upsets) is calibrated as described in EXPERIMENTS.md.
///  * **Alphas** (terrestrial, package contamination): 0–10 MeV emission
///    spectrum (paper Fig. 2b, after Sai-Halasz et al.), normalized to the
///    paper's assumed emission rate of 0.001 α/(cm²·h).
///
/// A Spectrum stores the omnidirectional differential flux in
/// 1/(cm²·s·MeV) and provides the discretization used by the FIT integral
/// (paper Eq. 8) plus inverse-CDF energy sampling for integrated-spectrum
/// Monte Carlo.

#include <string>
#include <vector>

#include "finser/phys/particle.hpp"
#include "finser/stats/rng.hpp"
#include "finser/util/interp.hpp"

namespace finser::env {

/// One energy bin of the discretized spectrum (paper Eq. 8).
struct EnergyBin {
  double e_rep_mev = 0.0;  ///< Representative energy (geometric bin center).
  double e_lo_mev = 0.0;
  double e_hi_mev = 0.0;
  double integral_flux_per_cm2_s = 0.0;  ///< ∫ flux dE over the bin.
};

/// Tabulated omnidirectional differential particle flux.
class Spectrum {
 public:
  /// \param energies_mev strictly increasing tabulation energies.
  /// \param flux_per_cm2_s_mev differential flux at those energies.
  Spectrum(phys::Species species, std::string name,
           std::vector<double> energies_mev,
           std::vector<double> flux_per_cm2_s_mev);

  phys::Species species() const { return species_; }
  const std::string& name() const { return name_; }

  double e_min_mev() const;
  double e_max_mev() const;

  /// Differential flux at \p e_mev [1/(cm²·s·MeV)]; 0 outside the table.
  double differential(double e_mev) const;

  /// Integral flux over [e_lo, e_hi] [1/(cm²·s)].
  double integral_flux(double e_lo_mev, double e_hi_mev) const;

  /// Total integral flux over the tabulated range [1/(cm²·s)].
  double total_flux() const { return integral_flux(e_min_mev(), e_max_mev()); }

  /// Discretize [e_lo, e_hi] into \p bins logarithmic energy bins.
  std::vector<EnergyBin> discretize(double e_lo_mev, double e_hi_mev,
                                    std::size_t bins) const;

  /// Sample an energy from the normalized spectrum (inverse CDF).
  double sample_energy(stats::Rng& rng) const;

  /// Rescale so that total_flux() equals \p flux [1/(cm²·s)].
  void normalize_total_flux(double flux_per_cm2_s);

 private:
  void rebuild_cdf();

  phys::Species species_;
  std::string name_;
  std::vector<double> energies_;
  std::vector<double> flux_;
  util::Grid1 grid_;          ///< Log-log interpolation of the flux.
  std::vector<double> cdf_;   ///< Cumulative integral at tabulation points.
};

/// Sea-level atmospheric proton spectrum (paper Fig. 2a).
Spectrum sea_level_protons();

/// Package alpha emission spectrum normalized to \p emission_per_cm2_h
/// (paper Fig. 2b; default 0.001 α/(cm²·h) per the paper's assumption).
Spectrum package_alphas(double emission_per_cm2_h = 0.001);

/// Sea-level atmospheric neutron spectrum (Gordon et al./JEDEC-class shape,
/// ~13 n/(cm²·h) above 10 MeV at NYC reference conditions). Drives the
/// indirect-ionization extension (the paper's Sec.-7 future work).
Spectrum sea_level_neutrons();

}  // namespace finser::env
