#pragma once
/// \file worker.hpp
/// \brief Worker-process side of sharded campaign execution.
///
/// `finser_cli worker` parses the same campaign JSON as its supervisor,
/// rebuilds the identical stage plan (pipeline::CampaignRunner::plan is
/// deterministic), then loops: poll the task lease for an assignment, ack
/// it with a `running` heartbeat, execute the stage via run_stage(), report
/// `done` or `failed`, repeat until a shutdown task arrives. A heartbeat
/// thread rewrites the hb lease every `heartbeat_period_s` so the
/// supervisor can tell "slow" from "dead". Workers also watch getppid():
/// if the supervisor vanishes (kill -9), they exit on their own instead of
/// running orphaned forever.
///
/// Fault hooks (util/fault.hpp): `worker_kill_after_claim` SIGKILLs right
/// after the ack heartbeat lands — the mid-stage-death drill;
/// `heartbeat_stall` stops the heartbeat thread and wedges the worker at
/// its next stage boundary — the hung-worker drill. The FINSER_SHARD_POISON
/// environment variable (a stage-id substring) makes every worker die on
/// matching assignments, which is how tests force a deterministic
/// quarantine across retries.

#include <cstdint>
#include <string>

namespace finser::shard {

/// Configuration of one worker process (set from CLI flags by the
/// supervisor when it spawns the worker).
struct WorkerConfig {
  std::string campaign_path;  ///< Campaign JSON (same file as supervisor).
  std::string artifact_dir;   ///< Resolved store root ("" = spec's own).
  std::string lease_dir;      ///< Control-plane directory.
  std::uint64_t worker_id = 0;
  std::size_t threads = 0;          ///< Stage thread budget; 0 = auto.
  double heartbeat_period_s = 0.1;
  double poll_period_s = 0.025;
};

/// Run the worker loop; returns the process exit code (0 on a clean
/// shutdown). Never throws — stage failures are reported through the
/// heartbeat lease and the loop continues to the next assignment.
int run_worker(const WorkerConfig& config);

}  // namespace finser::shard
