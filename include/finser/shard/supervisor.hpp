#pragma once
/// \file supervisor.hpp
/// \brief Fault-tolerant multi-process campaign execution (finser::shard).
///
/// The supervisor turns a pipeline::CampaignRunner stage plan into a fleet
/// of `finser_cli worker` subprocesses and keeps the campaign moving
/// through worker death, wedged stages and torn control files:
///
///   * **Assignment** — ready stages (dependencies completed) are handed to
///     idle workers in deterministic plan order via task lease files;
///     workers ack by heartbeat and report done/failed the same way. All
///     coordination is filesystem-only (shard/lease.hpp) — there are no
///     pipes or shared memory, so a record is either complete or absent.
///   * **Supervision** — worker exit (code or signal) and heartbeat
///     timeouts both reclaim the assignment; the stage is retried with
///     exponential backoff, on a fresh worker if the old one died. A stage
///     that fails `max_retries + 1` attempts is *quarantined*: its failure
///     is recorded (and surfaced in the run report's "shard" section),
///     dependent stages are marked blocked, and every other stage still
///     runs to completion — graceful degradation, not abort.
///   * **Watchdog** — with `stage_timeout_s > 0`, a stage exceeding its
///     wall-clock budget is treated exactly like a heartbeat timeout (kill
///     + retry), so a wedged Newton loop becomes a retryable failure.
///   * **Determinism** — every stage is a pure function of its fingerprint
///     and thread-count-invariant, so any worker count (including the
///     in-process path, workers = 0) produces byte-identical CSVs and
///     results; the equivalence is asserted by the ShardCampaignEquivalence
///     harness at worker counts {1, 2, 4}, including under kill -9.
///   * **Resume** — durable done markers keyed by campaign fingerprint let
///     a killed supervisor pick up where it stopped; combined with the
///     content-addressed artifact store, a re-run recomputes only what
///     never finished.
///
/// Counters: "shard.claims" (assignments handed out), "shard.reassigns"
/// (reclaimed after death/timeout), "shard.retries", "shard.quarantines",
/// "shard.worker_deaths", "shard.stage_timeouts", "shard.task_rewrites",
/// plus the "shard.heartbeat_ms" latency histogram.

#include <cstdint>
#include <string>
#include <vector>

#include "finser/exec/cancel.hpp"
#include "finser/exec/progress.hpp"
#include "finser/pipeline/campaign.hpp"
#include "finser/util/json.hpp"

namespace finser::shard {

/// Knobs of one sharded run (CLI flags map onto these 1:1).
struct ShardConfig {
  std::size_t workers = 2;      ///< Worker subprocesses (>= 1).
  std::size_t max_retries = 2;  ///< Extra attempts before quarantine.
  double heartbeat_period_s = 0.1;   ///< Worker heartbeat cadence.
  double heartbeat_timeout_s = 30.0; ///< Silence before a worker is killed.
  double stage_timeout_s = 0.0;      ///< Per-stage wall clock; 0 = off.
  double poll_period_s = 0.05;       ///< Supervisor poll cadence.
  double backoff_base_s = 0.1;       ///< Retry backoff: base * 2^(attempt-1).
  double backoff_max_s = 2.0;        ///< Backoff ceiling.
  std::string cli_path;      ///< finser_cli binary; "" = /proc/self/exe.
  std::string campaign_path; ///< Campaign JSON handed to workers (required).
  std::size_t worker_threads = 0;  ///< Per-worker thread budget; 0 = split.
  std::size_t lanes = 0;           ///< Forwarded --lanes; 0 = omit.
};

/// How a sharded campaign ended (maps to CLI exit codes 0 / 5 / 1).
enum class ShardOutcome {
  kComplete = 0,  ///< Every stage completed.
  kPartial = 1,   ///< >= 1 stage quarantined/blocked, >= 1 completed.
  kFailed = 2,    ///< Nothing completed.
};

/// Terminal record of one non-completed stage.
struct StageFailure {
  std::string id;
  std::string label;
  std::size_t attempts = 0;
  std::string status;  ///< "quarantined" | "blocked".
  std::string reason;  ///< Last failure ("worker died (signal 9)", ...).
};

/// Result of run_sharded_campaign().
struct ShardResult {
  ShardOutcome outcome = ShardOutcome::kComplete;
  std::size_t stages_total = 0;
  std::size_t stages_completed = 0;
  std::size_t stages_resumed = 0;  ///< Honored done markers from a prior run.
  std::vector<StageFailure> failures;
};

/// Execute \p spec with \p config.workers subprocesses. Blocks until the
/// campaign completes, degrades to partial, or fails; throws
/// util::Cancelled when \p cancel fires (after SIGTERM-ing the fleet) and
/// util::Error for unrecoverable supervisor-side problems (unspawnable
/// workers, unwritable lease dir). \p spec must have a non-empty
/// output_dir or artifact_dir (the artifact dir defaults to
/// `<output_dir>/artifacts` when unset — workers need the store to ship
/// stage products across processes).
ShardResult run_sharded_campaign(const pipeline::CampaignSpec& spec,
                                 const ShardConfig& config,
                                 const exec::CancelToken* cancel = nullptr,
                                 const exec::ProgressSink& progress = {});

/// The run-report "shard" section for \p result (worker count, outcome,
/// per-stage failure records) — embedded by the CLI next to "metrics".
util::JsonValue shard_report_json(const ShardResult& result,
                                  const ShardConfig& config);

}  // namespace finser::shard
