#pragma once
/// \file lease.hpp
/// \brief Atomic, CRC-guarded lease records for sharded campaign execution.
///
/// The shard supervisor and its `finser_cli worker` subprocesses coordinate
/// ONLY through the filesystem: the ArtifactStore carries stage products,
/// and a lease directory (`<artifact_dir>/leases/`) carries the control
/// plane. Every control record is one small file written with
/// util::atomic_write_file and framed exactly like an artifact blob —
/// magic, CRC-32 over the body, key echo (here: the campaign fingerprint)
/// — and loaded with the same never-throw discipline: a missing, torn,
/// corrupted or stale record reads as "absent", never as an error
/// (docs/sharding.md, docs/robustness.md).
///
/// Three record roles share one format, distinguished by LeaseKind and by
/// filename:
///
///   task-<worker>   supervisor → worker: "run stage <id>, attempt k" (or
///                   shutdown). Rewritten in place for each assignment;
///                   workers dedupe by (stage, attempt).
///   hb-<worker>     worker → supervisor: heartbeat, rewritten every tick.
///                   Carries the worker's state machine (idle / running /
///                   done / failed) and echoes the assignment it is acting
///                   on. The `done` heartbeat is the completion authority
///                   during a run.
///   done-<stage>    worker → future runs: durable completion marker. Only
///                   consulted at supervisor startup to resume a killed
///                   campaign; a torn one merely costs a recompute.
///
/// Records embed campaign_fingerprint() so a lease directory reused across
/// edited specs (or a different campaign pointed at the same artifact_dir)
/// is swept as stale instead of trusted. Rejects are counted per reason on
/// "shard.lease.rejects" (plus "shard.lease.reject.<why>" detail counters,
/// mirroring the artifact store's classification tests).

#include <cstdint>
#include <string>

namespace finser::shard {

/// Role of a lease record (serialized; order is ABI).
enum class LeaseKind : std::uint32_t {
  kTask = 0,       ///< supervisor → worker assignment.
  kHeartbeat = 1,  ///< worker → supervisor liveness + state.
  kDone = 2,       ///< durable stage-completion marker (resume only).
};

/// Worker / assignment state machine carried in a record (serialized).
enum class LeaseState : std::uint32_t {
  kIdle = 0,      ///< heartbeat: no assignment in hand.
  kAssign = 1,    ///< task: stage assigned, awaiting ack.
  kRunning = 2,   ///< heartbeat: stage in progress.
  kDone = 3,      ///< heartbeat/done: stage completed.
  kFailed = 4,    ///< heartbeat: stage raised; message holds the reason.
  kShutdown = 5,  ///< task: campaign over, exit cleanly.
};

/// One decoded control record. `seq` is a per-writer monotonic counter
/// (assignment number for tasks, tick number for heartbeats) used to
/// dedupe rewrites; `attempt` distinguishes retries of one stage so a
/// stale `done` from attempt k cannot complete attempt k+1.
struct LeaseRecord {
  LeaseKind kind = LeaseKind::kHeartbeat;
  LeaseState state = LeaseState::kIdle;
  std::uint64_t campaign = 0;  ///< campaign_fingerprint() echo.
  std::uint64_t worker = 0;    ///< writer's worker index.
  std::uint64_t attempt = 0;   ///< retry ordinal of the referenced stage.
  std::uint64_t seq = 0;       ///< writer-monotonic record counter.
  std::string stage;           ///< StageInfo::id ("" when idle/shutdown).
  std::string message;         ///< failure reason / diagnostics.
};

/// Paths of the three record roles inside \p lease_dir. \p stage_id must be
/// a plan id (path-safe by construction).
std::string task_path(const std::string& lease_dir, std::uint64_t worker);
std::string heartbeat_path(const std::string& lease_dir, std::uint64_t worker);
std::string done_path(const std::string& lease_dir,
                      const std::string& stage_id);

/// Atomically persist \p rec at \p path (creates \p path's directory on
/// demand). Returns false with the cause in \p error (if non-null) on I/O
/// failure — the control plane is heartbeat-repaired, so callers log and
/// continue. Honors the `lease_torn` fault site: the selected write lands
/// as a bare prefix of the record, exercising every reader's CRC rejection.
bool write_lease(const std::string& path, const LeaseRecord& rec,
                 std::string* error = nullptr);

/// Load the record at \p path. Returns false on any miss; torn, corrupted,
/// truncated or wrong-campaign records are classified misses with a
/// diagnostic in \p reason, never exceptions. A plain missing file (the
/// normal polling case) reports "no lease" quietly; everything else counts
/// one "shard.lease.rejects".
bool try_read_lease(const std::string& path, std::uint64_t expected_campaign,
                    LeaseRecord& out, std::string* reason = nullptr);

}  // namespace finser::shard
