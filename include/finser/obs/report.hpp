#pragma once
/// \file report.hpp
/// \brief Versioned RunReport JSON and Chrome-tracing output of finser::obs.
///
/// A RunReport is the durable artifact of one run: every metric in the
/// Registry plus build/config fingerprints, serialized as JSON
/// (schema "finser.run_report", version 1 — see docs/observability.md).
/// The document is split into
///
///   * `"metrics"`  — deterministic counters/histograms. Byte-identical
///                    across thread counts for the same seed (tested);
///   * `"timing"`   — wall-clock spans, gauges, and derived rates
///                    (particles/sec). Schedule-dependent by nature.
///
/// The trace writer emits the Chrome Trace Event JSON format
/// (`{"traceEvents": [...]}`, "X" complete events, microsecond timestamps)
/// loadable by chrome://tracing and Perfetto.

#include <string>

#include "finser/obs/obs.hpp"
#include "finser/util/json.hpp"

namespace finser::obs {

/// Caller-provided context embedded in the report's "run" section.
struct RunInfo {
  std::string tool;         ///< e.g. "finser_cli".
  std::string command;      ///< e.g. "run paper.ini".
  std::uint64_t seed = 0;
  std::size_t threads = 0;  ///< Resolved worker-thread count (0 = unknown).
  std::size_t lanes = 0;    ///< Resolved SPICE lane width (0 = unknown).
  double mc_scale = 1.0;
  /// Configuration fingerprint (util::Fnv1a); serialized as a hex string
  /// because JSON doubles cannot carry 64 bits.
  std::uint64_t config_fingerprint = 0;
};

/// Current report schema version (bump on breaking layout changes).
inline constexpr int kRunReportVersion = 1;

/// Serialize \p snapshot's deterministic part only (the "metrics" object).
/// This is the sub-document the thread-count-invariance contract covers.
util::JsonValue metrics_json(const Snapshot& snapshot);

/// Build the full report document from a snapshot + run info.
util::JsonValue build_run_report(const Snapshot& snapshot, const RunInfo& info);

/// snapshot() + build + atomically write pretty-printed JSON to \p path.
/// With \p shard non-null, the document gains a top-level "shard" section
/// (sharded-campaign outcome; see shard::shard_report_json and
/// docs/sharding.md). Throws util::Error on I/O failure.
void write_run_report(const std::string& path, const RunInfo& info,
                      const util::JsonValue* shard = nullptr);

/// Build the Chrome Trace Event document from the registry's buffered spans.
util::JsonValue build_chrome_trace(const Registry& registry);

/// Atomically write the trace document to \p path (throws util::Error).
void write_chrome_trace(const std::string& path);

/// Validate that \p doc has the report's required structure (schema marker,
/// version, build/run/metrics/timing sections with their mandatory keys).
/// Returns an empty string when valid, else a description of the first
/// problem. Used by the round-trip test and by the CLI's self-check.
std::string validate_run_report(const util::JsonValue& doc);

}  // namespace finser::obs
