#pragma once
/// \file obs.hpp
/// \brief Low-overhead observability: counters, histograms, timers, spans.
///
/// Every layer of the device→circuit→array pipeline reports into one global
/// Registry: the SPICE solvers count Newton iterations and retry-ladder
/// escalations, the characterizer times each supply voltage, the MC engines
/// count strikes and grid queries, the thread pool times chunks. The
/// registry serializes into a versioned RunReport JSON plus an optional
/// Chrome-tracing event file (obs/report.hpp).
///
/// **Cost contract.** Collection is off by default. Every recording macro
/// and span constructor first reads one global flag (a relaxed atomic bool,
/// set once at startup — compiles to a plain load + branch), so the
/// disabled-path overhead is < 2% even on the grid-query hot path
/// (measured: bench_out/obs_overhead.json). Metric handles are resolved
/// once per call site (static local inside the enabled branch) — the name
/// lookup never runs when collection is off, and runs once when on.
///
/// **Determinism contract.** Deterministic metrics (Counter, IntHistogram)
/// hold only 64-bit integer state and are updated commutatively across
/// thread-sharded cells, so their merged totals are bit-identical at any
/// thread count whenever the work itself is (the exec-layer contract:
/// chunk-keyed RNG streams). Wall-clock data (DurationStat, spans) is
/// inherently schedule-dependent and lives in the report's separate
/// "timing" section; the "metrics" section is byte-stable across thread
/// counts for the same seed (tested in tests/test_obs.cpp).

#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <vector>

namespace finser::obs {

namespace detail {
extern std::atomic<bool> g_enabled;
extern std::atomic<bool> g_trace_enabled;

/// Small dense id of the calling thread (assigned on first use, stable for
/// the thread's lifetime). Used as the shard key and the trace "tid".
unsigned thread_id();
}  // namespace detail

/// Global collection switch. Reading it is the entire disabled-path cost.
inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

/// Whether span trace events are being buffered (implies enabled()).
inline bool trace_enabled() {
  return detail::g_trace_enabled.load(std::memory_order_relaxed);
}

/// Turn metric collection on/off. Call before the measured region; flipping
/// it mid-region only loses (or gains) events, never corrupts state.
void set_enabled(bool on);

/// Turn span trace-event buffering on/off (forces collection on with it).
void set_trace_enabled(bool on);

/// Read FINSER_METRICS: unset/"0"/"" → collection stays off; anything else
/// turns it on. Returns the value (empty when unset) so CLIs can treat a
/// path-like value as a default report destination.
std::string configure_from_env();

/// Monotonic nanoseconds since an arbitrary process-local epoch.
std::uint64_t now_ns();

// ---------------------------------------------------------------------------
// Deterministic metrics (integer state only)
// ---------------------------------------------------------------------------

/// Monotonic event counter, sharded over cache-line-padded cells to keep
/// parallel increments off each other's cache lines. The merged total is a
/// sum of u64 — order-free, hence thread-count-invariant.
class Counter {
 public:
  /// Record \p n events. Call sites normally go through FINSER_OBS_COUNT
  /// (which guards on enabled()); calling this directly while disabled is
  /// allowed and simply records.
  void add(std::uint64_t n = 1) {
    shards_[detail::thread_id() & (kShards - 1)].v.fetch_add(
        n, std::memory_order_relaxed);
  }

  /// Deterministic merged total.
  std::uint64_t total() const {
    std::uint64_t sum = 0;
    for (const Cell& c : shards_) sum += c.v.load(std::memory_order_relaxed);
    return sum;
  }

  void reset() {
    for (Cell& c : shards_) c.v.store(0, std::memory_order_relaxed);
  }

 private:
  static constexpr std::size_t kShards = 16;  // Power of two (mask index).
  struct alignas(64) Cell {
    std::atomic<std::uint64_t> v{0};
  };
  std::array<Cell, kShards> shards_;
};

/// Histogram of non-negative integer observations (Newton iterations per
/// solve, hits per strike, ...) in power-of-two buckets: bucket b counts
/// values with bit_width b, i.e. 0, 1, 2–3, 4–7, ... All state is u64 and
/// commutative, so the merged result is thread-count-invariant.
class IntHistogram {
 public:
  static constexpr std::size_t kBuckets = 32;  ///< Values ≥ 2³¹ saturate.

  void record(std::uint64_t value);

  std::uint64_t count() const;
  std::uint64_t sum() const;
  std::uint64_t min() const;  ///< UINT64_MAX when empty.
  std::uint64_t max() const;  ///< 0 when empty.
  std::array<std::uint64_t, kBuckets> buckets() const;

  void reset();

 private:
  std::array<std::atomic<std::uint64_t>, kBuckets> buckets_{};
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> sum_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

// ---------------------------------------------------------------------------
// Timing metrics (wall clock — report "timing" section, never "metrics")
// ---------------------------------------------------------------------------

/// Aggregated wall-time statistic of a named region (count / total / min /
/// max, nanosecond integers). Fed by ScopedSpan.
class DurationStat {
 public:
  void record_ns(std::uint64_t ns);

  std::uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  std::uint64_t total_ns() const { return total_.load(std::memory_order_relaxed); }
  std::uint64_t min_ns() const;  ///< 0 when empty.
  std::uint64_t max_ns() const;

  void reset();

 private:
  std::atomic<std::uint64_t> count_{0};
  std::atomic<std::uint64_t> total_{0};
  std::atomic<std::uint64_t> min_{~0ull};
  std::atomic<std::uint64_t> max_{0};
};

/// Last-write-wins gauge for level-style observations (queue depth, restart
/// level). Also tracks the maximum. Schedule-dependent → timing section.
class Gauge {
 public:
  void set(std::int64_t v);
  std::int64_t value() const { return value_.load(std::memory_order_relaxed); }
  std::int64_t max() const { return max_.load(std::memory_order_relaxed); }
  void reset();

 private:
  std::atomic<std::int64_t> value_{0};
  std::atomic<std::int64_t> max_{INT64_MIN};
};

// ---------------------------------------------------------------------------
// Registry
// ---------------------------------------------------------------------------

/// One Chrome-tracing "complete" event (ph:"X").
struct TraceEvent {
  std::string name;
  std::uint64_t start_ns = 0;  ///< now_ns() at span entry.
  std::uint64_t dur_ns = 0;
  unsigned tid = 0;
};

/// Immutable snapshot of every metric, ready for serialization. Names are
/// sorted, so identical metric content yields identical serialized bytes no
/// matter the registration order.
struct Snapshot {
  struct CounterRow {
    std::string name;
    std::uint64_t total = 0;
  };
  struct HistogramRow {
    std::string name;
    std::uint64_t count = 0, sum = 0, min = 0, max = 0;
    std::array<std::uint64_t, IntHistogram::kBuckets> buckets{};
  };
  struct DurationRow {
    std::string name;
    std::uint64_t count = 0, total_ns = 0, min_ns = 0, max_ns = 0;
  };
  struct GaugeRow {
    std::string name;
    std::int64_t value = 0, max = 0;
  };
  std::vector<CounterRow> counters;       ///< Deterministic.
  std::vector<HistogramRow> histograms;   ///< Deterministic.
  std::vector<DurationRow> durations;     ///< Wall clock.
  std::vector<GaugeRow> gauges;           ///< Schedule-dependent.
};

/// Process-global metric registry. Metric objects are created on first
/// lookup and live for the process lifetime (references never dangle);
/// lookup takes a mutex, which is why call sites cache the reference in a
/// function-local static behind the enabled() branch.
class Registry {
 public:
  static Registry& global();

  Counter& counter(const std::string& name);
  IntHistogram& int_histogram(const std::string& name);
  DurationStat& duration(const std::string& name);
  Gauge& gauge(const std::string& name);

  /// Buffer one trace event (bounded; events past the cap are counted in
  /// dropped_trace_events() instead of buffered).
  void record_trace(TraceEvent event);

  std::vector<TraceEvent> trace_events() const;
  std::uint64_t dropped_trace_events() const;

  /// Copy out every metric, names sorted.
  Snapshot snapshot() const;

  /// Zero every metric and drop all trace events. Metric references stay
  /// valid. Intended for test isolation and CLI run boundaries.
  void reset();

  /// Maximum buffered trace events (≈100 MB worst case is far above any
  /// realistic campaign; the cap exists so a runaway span site degrades to
  /// dropped events, not OOM).
  static constexpr std::size_t kMaxTraceEvents = 1u << 20;

 private:
  Registry() = default;
  struct Impl;
  Impl& impl() const;
};

// ---------------------------------------------------------------------------
// Spans
// ---------------------------------------------------------------------------

/// RAII scoped span: records wall time into Registry::duration(name) and,
/// when tracing, buffers a TraceEvent. When collection is disabled the
/// constructor is one flag load — no clock read, no lookup.
class ScopedSpan {
 public:
  /// \p name must outlive the span (string literals in practice).
  explicit ScopedSpan(const char* name) {
    if (enabled()) start(name);
  }

  /// Span with a dynamic trace label (e.g. "bin E=2.5MeV"): aggregates
  /// under \p stat_name, traces as \p trace_label.
  ScopedSpan(const char* name, std::string trace_label) {
    if (enabled()) {
      start(name);
      label_ = std::move(trace_label);
    }
  }

  ~ScopedSpan() {
    if (active_) finish();
  }

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  void start(const char* name);
  void finish();

  const char* name_ = nullptr;
  std::string label_;  ///< Optional trace-event override label.
  std::uint64_t start_ns_ = 0;
  bool active_ = false;
};

}  // namespace finser::obs

/// Count \p n events on counter \p name. Disabled cost: one relaxed load and
/// a branch; the registry lookup happens once per site, and only if enabled.
#define FINSER_OBS_COUNT(name, n)                                    \
  do {                                                               \
    if (::finser::obs::enabled()) {                                  \
      static ::finser::obs::Counter& finser_obs_c_ =                 \
          ::finser::obs::Registry::global().counter(name);           \
      finser_obs_c_.add(static_cast<std::uint64_t>(n));              \
    }                                                                \
  } while (false)

/// Record integer \p v into histogram \p name (same cost model).
#define FINSER_OBS_RECORD(name, v)                                   \
  do {                                                               \
    if (::finser::obs::enabled()) {                                  \
      static ::finser::obs::IntHistogram& finser_obs_h_ =            \
          ::finser::obs::Registry::global().int_histogram(name);     \
      finser_obs_h_.record(static_cast<std::uint64_t>(v));           \
    }                                                                \
  } while (false)

/// Set gauge \p name to \p v (same cost model).
#define FINSER_OBS_GAUGE(name, v)                                    \
  do {                                                               \
    if (::finser::obs::enabled()) {                                  \
      static ::finser::obs::Gauge& finser_obs_g_ =                   \
          ::finser::obs::Registry::global().gauge(name);             \
      finser_obs_g_.set(static_cast<std::int64_t>(v));               \
    }                                                                \
  } while (false)
