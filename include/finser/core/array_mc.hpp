#pragma once
/// \file array_mc.hpp
/// \brief Array-level 3-D Monte Carlo (paper Sec. 5.1).
///
/// For one particle species and energy, strikes are sampled over the array
/// footprint (random position on a source plane above the fins, random
/// downward direction), ray-traced through the fin boxes with energy
/// degradation, and converted per cell into the (I1, I2, I3) charge triple
/// of that cell's sensitive transistors. Cell POFs come from the
/// characterized LUTs and combine into the array POF via the paper's
/// Eqs. 4–6:
///
///   POF_tot = 1 − Π_i (1 − POF(cell_i))                     (Eq. 4)
///   POF_SEU = Σ_i POF(cell_i) · Π_{j≠i} (1 − POF(cell_j))   (Eq. 5)
///   POF_MBU = POF_tot − POF_SEU                             (Eq. 6)
///
/// One geometry pass prices **all** supply voltages and both
/// process-variation modes simultaneously (the deposits are electrical-
/// state-independent) — the hierarchical trick that keeps the cross-layer
/// analysis tractable (paper Sec. 2).

#include <array>
#include <cstdint>
#include <vector>

#include "finser/ckpt/checkpoint.hpp"
#include "finser/core/pof_combine.hpp"
#include "finser/exec/progress.hpp"
#include "finser/phys/track.hpp"
#include "finser/sram/layout.hpp"
#include "finser/sram/pof_table.hpp"
#include "finser/stats/rng.hpp"
#include "finser/stats/summary.hpp"
#include "finser/util/bytes.hpp"

namespace finser::core {

/// Angular law of the particle source (see stats/direction.hpp).
///  * kIsotropic — uniform over the downward hemisphere (package alphas);
///  * kCosine    — flux-weighted arrivals (atmospheric particles);
///  * kBeam      — fixed direction (accelerated beam testing; set
///                 ArrayMcConfig::beam_direction, tilted beams are the
///                 standard technique for probing MBU sensitivity).
enum class SourceAngularLaw { kIsotropic, kCosine, kBeam };

/// Position sampling over the source plane.
enum class SourcePositionSampling {
  kUniform,     ///< i.i.d. uniform positions.
  kStratified,  ///< Jittered grid strata: same estimator mean, lower
                ///< variance for the position-driven part of the POF.
};

/// Array-MC knobs.
struct ArrayMcConfig {
  std::size_t strikes = 40000;  ///< Strikes per (species, energy) point.
  SourceAngularLaw angular = SourceAngularLaw::kIsotropic;
  SourcePositionSampling position = SourcePositionSampling::kUniform;
  /// Beam direction for SourceAngularLaw::kBeam (normalized internally;
  /// must point downward, z < 0).
  geom::Vec3 beam_direction{0.0, 0.0, -1.0};
  phys::StragglingModel straggling = phys::StragglingModel::kAuto;
  /// Lateral margin of the source plane around the array footprint [nm].
  /// Grazing tracks that enter the fin layer from just outside the array
  /// are real MBU contributors; the sampled area (and hence the FIT
  /// normalization, see sampled_area_nm2()) grows accordingly.
  double source_margin_nm = 400.0;
  /// Source plane height above fin tops [nm]. Kept small so near-grazing
  /// tracks (the ones that cross several cells and cause MBUs) enter the
  /// fin layer while still above the array footprint.
  double source_height_nm = 1.0;
  /// Worker threads for the strike loop; 0 = auto (FINSER_THREADS, else
  /// hardware concurrency). Results never depend on this value.
  std::size_t threads = 0;
  /// Strikes per deterministic RNG chunk. Chunk *i* always consumes stream
  /// stats::Rng::stream(seed, i), so results depend on (seed, strikes,
  /// chunk) — and on nothing about the schedule or thread count.
  std::size_t chunk = 1024;
};

/// Monte-Carlo POF estimate for one (species, energy, Vdd, PV-mode).
struct PofEstimate {
  double tot = 0.0;
  double seu = 0.0;
  double mbu = 0.0;
  double tot_se = 0.0;  ///< Standard errors of the means above.
  double seu_se = 0.0;
  double mbu_se = 0.0;
  double hit_fraction = 0.0;  ///< Strikes with any sensitive deposit.
  std::size_t strikes = 0;

  /// Exact per-strike upset-multiplicity distribution, averaged over
  /// strikes: multiplicity[n] = P(exactly n cells flip) for n <
  /// kMaxMultiplicity-1; the last bin aggregates "that many or more".
  /// Computed by Poisson-binomial dynamic programming over the touched
  /// cells' POFs, so multiplicity[1] ≡ seu and Σ_{n≥2} ≡ mbu by
  /// construction — the extra information ECC/interleaving sizing needs
  /// beyond the paper's binary SEU/MBU split.
  std::array<double, kMaxMultiplicity> multiplicity{};
};

/// Index pair (0 = nominal, 1 = with process variation).
inline constexpr std::size_t kModeNominal = 0;
inline constexpr std::size_t kModeWithPv = 1;

/// Merge-friendly (count, mean, M2) Welford accumulator behind one
/// PofEstimate: three RunningStats channels (tot/seu/mbu) plus the
/// multiplicity mass. Chunked engines keep one accumulator per (vdd, mode)
/// per chunk and merge the partials pairwise in chunk order — the merge is
/// exact for the mean and numerically stable for the variance, so the
/// parallel reduction reproduces the serial statistics.
class PofAccumulator {
 public:
  /// Add one strike's combined POFs (pre-weighted for weighted estimators).
  void add(const CombinedPof& pof);

  /// Add \p mass to multiplicity bin \p n (bins are plain sums).
  void add_multiplicity(std::size_t n, double mass);

  /// Fold \p other in (Chan et al. parallel Welford merge).
  void merge(const PofAccumulator& other);

  /// Number of strikes accumulated (via add()).
  std::size_t count() const { return tot_.count(); }

  /// Final estimate. \p strikes normalizes the multiplicity mass and is
  /// recorded verbatim; \p hit_fraction is campaign-level bookkeeping.
  PofEstimate finalize(std::size_t strikes, double hit_fraction) const;

  /// Bit-exact serialization for checkpoint blobs: the raw Welford state
  /// round-trips as IEEE-754 doubles, so a deserialized accumulator merges
  /// identically to the original.
  void write(util::ByteWriter& w) const;
  static PofAccumulator read(util::ByteReader& r);

 private:
  stats::RunningStats tot_;
  stats::RunningStats seu_;
  stats::RunningStats mbu_;
  std::array<double, kMaxMultiplicity> mult_{};
};

/// Result of one energy point: estimates for every (Vdd, mode).
struct ArrayMcResult {
  std::vector<double> vdds;
  /// est[vdd_index][mode].
  std::vector<std::array<PofEstimate, 2>> est;
};

/// Bit-exact ArrayMcResult codec, used for SerFlow sweep checkpoint blobs
/// (one blob per energy bin). Doubles round-trip as raw IEEE-754, so a
/// restored bin is indistinguishable from a recomputed one.
std::vector<std::uint8_t> encode_result(const ArrayMcResult& result);
ArrayMcResult decode_result(util::ByteReader& r);

/// The array-level Monte-Carlo engine.
class ArrayMc {
 public:
  /// \param layout and \param model must outlive the engine.
  ArrayMc(const sram::ArrayLayout& layout, const sram::CellSoftErrorModel& model,
          const ArrayMcConfig& config);

  ArrayMc(const ArrayMc&) = delete;
  ArrayMc& operator=(const ArrayMc&) = delete;

  /// Run the MC at a fixed particle energy. Strikes are processed in
  /// fixed-size chunks on the exec thread pool; chunk *i* draws from
  /// stats::Rng::stream(seed, i), so the result is bit-identical for any
  /// thread count. run() is const and thread-safe: concurrent calls on one
  /// engine (e.g. parallel energy bins) are fine.
  ///
  /// \p run adds checkpoint/cancel behaviour (ckpt::RunOptions): with a
  /// checkpoint path, each chunk's partial is persisted and a resumed run
  /// recomputes only the missing chunks — the pairwise reduction over the
  /// full chunk set makes the result bit-identical to an uninterrupted run.
  /// Cancellation throws util::Cancelled at a chunk boundary.
  ArrayMcResult run(phys::Species species, double e_mev, std::uint64_t seed,
                    const exec::ProgressSink& progress = {},
                    const ckpt::RunOptions& run_opts = {}) const;

  const ArrayMcConfig& config() const { return config_; }

  /// Area of the source-sampling plane [nm²]: (W + 2·margin)(H + 2·margin).
  /// This — not the bare array footprint — is the area POF estimates are
  /// normalized to, and therefore the area that enters the FIT integral.
  double sampled_area_nm2() const;

 private:
  const sram::ArrayLayout* layout_;
  const sram::CellSoftErrorModel* model_;
  ArrayMcConfig config_;
  geom::Vec3 beam_dir_;  ///< Normalized beam direction (kBeam law).
};

}  // namespace finser::core
