#pragma once
/// \file array_mc.hpp
/// \brief Array-level 3-D Monte Carlo (paper Sec. 5.1).
///
/// For one particle species and energy, strikes are sampled over the array
/// footprint (random position on a source plane above the fins, random
/// downward direction), ray-traced through the fin boxes with energy
/// degradation, and converted per cell into the (I1, I2, I3) charge triple
/// of that cell's sensitive transistors. Cell POFs come from the
/// characterized LUTs and combine into the array POF via the paper's
/// Eqs. 4–6:
///
///   POF_tot = 1 − Π_i (1 − POF(cell_i))                     (Eq. 4)
///   POF_SEU = Σ_i POF(cell_i) · Π_{j≠i} (1 − POF(cell_j))   (Eq. 5)
///   POF_MBU = POF_tot − POF_SEU                             (Eq. 6)
///
/// One geometry pass prices **all** supply voltages and both
/// process-variation modes simultaneously (the deposits are electrical-
/// state-independent) — the hierarchical trick that keeps the cross-layer
/// analysis tractable (paper Sec. 2).
///
/// The chunked strike driver, accumulation and checkpoint plumbing live in
/// the common base (core/array_engine.hpp); this engine supplies only the
/// charged-particle source sampling and per-strike physics.

#include <vector>

#include "finser/core/array_engine.hpp"

namespace finser::core {

/// Angular law of the particle source (see stats/direction.hpp).
///  * kIsotropic — uniform over the downward hemisphere (package alphas);
///  * kCosine    — flux-weighted arrivals (atmospheric particles);
///  * kBeam      — fixed direction (accelerated beam testing; set
///                 ArrayMcConfig::beam_direction, tilted beams are the
///                 standard technique for probing MBU sensitivity).
enum class SourceAngularLaw { kIsotropic, kCosine, kBeam };

/// Position sampling over the source plane.
enum class SourcePositionSampling {
  kUniform,     ///< i.i.d. uniform positions.
  kStratified,  ///< Jittered grid strata: same estimator mean, lower
                ///< variance for the position-driven part of the POF.
  kImportance,  ///< Track-aware mixture importance sampling: the direction is
                ///< drawn first, then the strike origin is sampled by picking
                ///< the track's fin-layer *crossing point* from a |z|-banded
                ///< stats::FocusPlane over dilated sensitive-fin footprints
                ///< and back-projecting along the track to the source plane
                ///< (a pure translation, so the proposal density — and hence
                ///< the likelihood-ratio weight — stays exact). A uniform
                ///< mixture floor bounds every weight; same estimand as
                ///< kUniform, far lower variance (docs/statistics.md).
};

/// Array-MC knobs.
struct ArrayMcConfig {
  std::size_t strikes = 40000;  ///< Strikes per (species, energy) point.
  SourceAngularLaw angular = SourceAngularLaw::kIsotropic;
  SourcePositionSampling position = SourcePositionSampling::kUniform;
  /// Beam direction for SourceAngularLaw::kBeam (normalized internally;
  /// must point downward, z < 0).
  geom::Vec3 beam_direction{0.0, 0.0, -1.0};
  phys::StragglingModel straggling = phys::StragglingModel::kAuto;
  /// Lateral margin of the source plane around the array footprint [nm].
  /// Grazing tracks that enter the fin layer from just outside the array
  /// are real MBU contributors; the sampled area (and hence the FIT
  /// normalization, see sampled_area_nm2()) grows accordingly.
  double source_margin_nm = 400.0;
  /// Source plane height above fin tops [nm]. Kept small so near-grazing
  /// tracks (the ones that cross several cells and cause MBUs) enter the
  /// fin layer while still above the array footprint.
  double source_height_nm = 1.0;
  /// Worker threads for the strike loop; 0 = auto (FINSER_THREADS, else
  /// hardware concurrency). Results never depend on this value.
  std::size_t threads = 0;
  /// Strikes per deterministic RNG chunk. Chunk *i* always consumes stream
  /// stats::Rng::stream(seed, i), so results depend on (seed, strikes,
  /// chunk) — and on nothing about the schedule or thread count.
  std::size_t chunk = 1024;
  /// Variance-reduction knobs (importance-sampling mixture, direction bias,
  /// energy strata, QMC). All default to off; the defaults reproduce the
  /// pre-VR estimator bit-for-bit.
  stats::SamplingConfig sampling;
  /// Per-energy-point CI-driven early stopping (default off).
  stats::CiStopConfig ci;
  /// Correlated multi-node charge collection (docs/charge_sharing.md). The
  /// default mode (1x1) keeps the independent per-cell path byte-for-byte;
  /// 2x2/1x4 group touched cells into tiles and price each multi-cell tile
  /// with one joint multi-cell circuit simulation.
  sram::ClusterConfig cluster;
  /// Cell design behind the cluster netlists; required when
  /// cluster.enabled() (the soft-error model does not retain the design it
  /// was characterized from). Must outlive the engine.
  const sram::CellDesign* cluster_design = nullptr;
  /// Optional shared cluster surface (e.g. SerFlow's, reused across energy
  /// bins and persisted through the ArtifactStore). Null + cluster enabled
  /// = the engine owns a private surface. Must outlive the engine.
  sram::ClusterPofSurface* cluster_surface = nullptr;
};

/// The charged-particle array Monte-Carlo engine.
class ArrayMc final : public ArrayEngine {
 public:
  /// \param layout and \param model must outlive the engine.
  ArrayMc(const sram::ArrayLayout& layout, const sram::CellSoftErrorModel& model,
          const ArrayMcConfig& config);

  /// Run the MC at a fixed particle energy (legacy spelling of
  /// ArrayEngine::run_point; same determinism and checkpoint contract).
  ArrayMcResult run(phys::Species species, double e_mev, std::uint64_t seed,
                    const exec::ProgressSink& progress = {},
                    const ckpt::RunOptions& run_opts = {}) const {
    return run_point(EnergyPoint{species, e_mev}, seed, progress, run_opts);
  }

  const ArrayMcConfig& config() const { return config_; }

  std::uint64_t point_fingerprint(const EnergyPoint& point,
                                  std::uint64_t seed) const override;
  std::size_t units() const override { return config_.strikes; }

 protected:
  std::size_t chunk_size() const override { return config_.chunk; }
  std::size_t threads() const override { return config_.threads; }
  phys::StragglingModel straggling() const override {
    return config_.straggling;
  }
  const char* kind() const override { return "ArrayMc"; }
  const char* unit_label() const override { return "strikes"; }
  const char* span_name() const override { return "core.array_mc.run"; }
  const char* runs_counter() const override { return "core.array_mc.runs"; }
  const char* units_counter() const override { return "core.array_mc.strikes"; }
  double source_margin_nm() const override { return config_.source_margin_nm; }
  const stats::CiStopConfig& ci_stop() const override { return config_.ci; }
  sram::ClusterPofSurface* cluster_surface() const override {
    return surface_;
  }

  void simulate_chunk(const exec::ChunkRange& r, const EnergyPoint& point,
                      std::uint64_t seed, stats::Rng& rng, WorkerScratch& ws,
                      McPartial& part) const override;

 private:
  ArrayMcConfig config_;
  geom::Vec3 beam_dir_;  ///< Normalized beam direction (kBeam law).
  /// Cluster surface in use: the shared one from the config, else the
  /// engine-owned fallback, else null (1x1 — per-cell path).
  std::unique_ptr<sram::ClusterPofSurface> owned_surface_;
  sram::ClusterPofSurface* surface_ = nullptr;
  /// Importance-sampling proposals over the fin-layer mid-depth plane, one
  /// per (geometric |z| band, azimuth sector) pair: grazing bands dilate
  /// the sensitive-fin footprints along the sector azimuth into the strip
  /// their tracks sweep while crossing the fin layer. Engaged only for
  /// SourcePositionSampling::kImportance; near-horizontal tracks fall back
  /// to plain uniform origins.
  std::vector<stats::FocusPlane> focus_bands_;
  /// Depth from the source plane down to fin mid-height [nm]: the
  /// back-projection distance from a sampled crossing point to the origin.
  double focus_mid_depth_nm_ = 0.0;
};

}  // namespace finser::core
