#pragma once
/// \file pof_combine.hpp
/// \brief The paper's Eqs. 4-6: combining per-cell POFs into array POFs.
///
///   POF_tot = 1 − Π_i (1 − p_i)                      (Eq. 4)
///   POF_SEU = Σ_i p_i · Π_{j≠i} (1 − p_j)            (Eq. 5)
///   POF_MBU = POF_tot − POF_SEU                      (Eq. 6)
///
/// Shared by the charged-particle and neutron array Monte Carlos.

#include <array>
#include <vector>

namespace finser::core {

/// Upset-multiplicity histogram depth: P(0) .. P(kMaxMultiplicity-1 or more).
inline constexpr std::size_t kMaxMultiplicity = 9;

/// Combined array POFs of one strike.
struct CombinedPof {
  double tot = 0.0;
  double seu = 0.0;
  double mbu = 0.0;
};

/// Evaluate Eqs. 4-6 for the touched cells' POFs (each in [0, 1]).
/// Exact also when some p_i = 1 (direct O(k²) products; k is tiny).
CombinedPof combine_eqs_4_to_6(const std::vector<double>& p);

/// Exact distribution of the number of flipped cells given independent
/// per-cell flip probabilities \p p (Poisson-binomial, O(k²) DP). The last
/// bin aggregates counts >= kMaxMultiplicity-1; when that aggregation can
/// occur (more cells than bins) the saturation is counter-tracked as
/// `core.pof.multiplicity_saturated`, never silent. Identities (tested):
/// out[0] = 1 - POF_tot, out[1] = POF_SEU, Σ_{n>=2} out[n] = POF_MBU.
std::array<double, kMaxMultiplicity> multiplicity_distribution(
    const std::vector<double>& p);

/// Convolve a multiplicity distribution with an arbitrary flip-count law
/// \p q (q[k] = P(k flips), e.g. a cluster's joint flip-count distribution
/// from sram::ClusterPofSurface), saturating mass at counts >=
/// kMaxMultiplicity-1 into the last bin. Saturation with nonzero mass is
/// counter-tracked as `core.pof.multiplicity_saturated`. Accumulation order
/// is fixed (outer index ascending, then inner), so results are
/// bit-reproducible.
std::array<double, kMaxMultiplicity> convolve_multiplicity(
    const std::array<double, kMaxMultiplicity>& dist,
    const std::vector<double>& q);

}  // namespace finser::core
