#pragma once
/// \file array_engine.hpp
/// \brief Common interface + chunked driver of the array-level Monte Carlos.
///
/// Both array engines — the charged-particle ArrayMc (direct ionization) and
/// the forced-interaction NeutronArrayMc (indirect ionization) — reduce the
/// same loop shape: N independent strike/history units, processed in
/// fixed-size RNG chunks on the exec thread pool, accumulated into one
/// PofAccumulator per (vdd, mode) and merged pairwise in chunk-index order.
/// ArrayEngine hoists that entire driver — worker-scratch management, the
/// plain vs checkpointed execution paths, partial decode/merge, and the
/// final estimate — into one place; the engines supply only the per-chunk
/// physics (simulate_chunk) and their checkpoint fingerprint.
///
/// The driver preserves the exec-layer determinism contract verbatim: chunk
/// *i* consumes stats::Rng::stream(seed, i) and nothing else, partials merge
/// in chunk-index order, so results are bit-identical at any thread count
/// and across kill/resume (docs/parallelism.md, docs/robustness.md).
///
/// ArrayEngine is also the unit the pipeline layer schedules: a campaign
/// stage node is "one engine × one energy point", keyed by the same
/// fingerprint the checkpoint layer uses (docs/architecture.md).

#include <array>
#include <cstdint>
#include <memory>
#include <vector>

#include "finser/ckpt/checkpoint.hpp"
#include "finser/core/pof_combine.hpp"
#include "finser/exec/progress.hpp"
#include "finser/phys/track.hpp"
#include "finser/sram/cluster.hpp"
#include "finser/sram/layout.hpp"
#include "finser/sram/pof_table.hpp"
#include "finser/stats/rng.hpp"
#include "finser/stats/summary.hpp"
#include "finser/stats/vr.hpp"
#include "finser/util/bytes.hpp"
#include "finser/util/fingerprint.hpp"

namespace finser::core {

/// Monte-Carlo POF estimate for one (species, energy, Vdd, PV-mode).
struct PofEstimate {
  double tot = 0.0;
  double seu = 0.0;
  double mbu = 0.0;
  double tot_se = 0.0;  ///< Standard errors of the means above.
  double seu_se = 0.0;
  double mbu_se = 0.0;
  double hit_fraction = 0.0;  ///< Strikes with any sensitive deposit.
  std::size_t strikes = 0;
  /// Effective sample size of the weighted POF_tot estimator,
  /// (Σw)² / Σw² — equals `strikes` for the uniform (unit-weight)
  /// estimator, smaller when importance weights vary (docs/statistics.md).
  double ess = 0.0;

  /// Exact per-strike upset-multiplicity distribution, averaged over
  /// strikes: multiplicity[n] = P(exactly n cells flip) for n <
  /// kMaxMultiplicity-1; the last bin aggregates "that many or more".
  /// Computed by Poisson-binomial dynamic programming over the touched
  /// cells' POFs, so multiplicity[1] ≡ seu and Σ_{n≥2} ≡ mbu by
  /// construction — the extra information ECC/interleaving sizing needs
  /// beyond the paper's binary SEU/MBU split.
  std::array<double, kMaxMultiplicity> multiplicity{};
};

/// Index pair (0 = nominal, 1 = with process variation).
inline constexpr std::size_t kModeNominal = 0;
inline constexpr std::size_t kModeWithPv = 1;

/// Merge-friendly (count, mean, M2) Welford accumulator behind one
/// PofEstimate: three RunningStats channels (tot/seu/mbu) plus the
/// multiplicity mass. Chunked engines keep one accumulator per (vdd, mode)
/// per chunk and merge the partials pairwise in chunk order — the merge is
/// exact for the mean and numerically stable for the variance, so the
/// parallel reduction reproduces the serial statistics.
class PofAccumulator {
 public:
  /// Add one strike's combined POFs with unit weight.
  void add(const CombinedPof& pof);

  /// Add one strike's combined POFs with a likelihood-ratio weight: the
  /// plain channels receive weight·pof (the Horvitz–Thompson estimator the
  /// SE machinery already understands), while the weighted-Welford channel
  /// tracks (pof, weight) for ESS accounting. add(pof) ≡ add_weighted(pof, 1)
  /// bit-for-bit.
  void add_weighted(const CombinedPof& pof, double weight);

  /// Add \p mass to multiplicity bin \p n (bins are plain sums).
  void add_multiplicity(std::size_t n, double mass);

  /// Fold \p other in (Chan et al. parallel Welford merge).
  void merge(const PofAccumulator& other);

  /// Number of strikes accumulated (via add()).
  std::size_t count() const { return tot_.count(); }

  /// Relative half-width of the 95% CI on the POF_tot channel — the
  /// quantity the adaptive stopping rule drives to `--ci-target`.
  double rel_halfwidth() const {
    return stats::relative_halfwidth(tot_.mean(), tot_.stderr_of_mean());
  }

  /// Effective sample size of the weighted POF_tot channel.
  double ess() const { return wtot_.ess(); }

  /// Final estimate. \p strikes normalizes the multiplicity mass and is
  /// recorded verbatim; \p hit_fraction is campaign-level bookkeeping.
  PofEstimate finalize(std::size_t strikes, double hit_fraction) const;

  /// Bit-exact serialization for checkpoint blobs: the raw Welford state
  /// round-trips as IEEE-754 doubles, so a deserialized accumulator merges
  /// identically to the original.
  void write(util::ByteWriter& w) const;
  static PofAccumulator read(util::ByteReader& r);

 private:
  stats::RunningStats tot_;
  stats::RunningStats seu_;
  stats::RunningStats mbu_;
  /// Weighted-Welford shadow of the tot channel: raw (pof, weight) pairs,
  /// for effective-sample-size accounting of importance-sampled runs.
  stats::WeightedRunningStats wtot_;
  std::array<double, kMaxMultiplicity> mult_{};
};

/// Result of one energy point: estimates for every (Vdd, mode).
struct ArrayMcResult {
  std::vector<double> vdds;
  /// est[vdd_index][mode].
  std::vector<std::array<PofEstimate, 2>> est;
  /// Adaptive-stopping state of the run that produced this result: the
  /// configured unit budget, the units actually consumed (== units_total
  /// unless CI-driven stopping converged first), and whether it stopped
  /// early. Serialized with the result so a resumed/cached bin restores the
  /// exact stopping state (docs/statistics.md).
  std::size_t units_total = 0;
  std::size_t units_used = 0;
  bool stopped_early = false;
};

/// Bit-exact ArrayMcResult codec, used for SerFlow sweep checkpoint blobs
/// and ArtifactStore per-bin artifacts (one blob per energy bin). Doubles
/// round-trip as raw IEEE-754, so a restored bin is indistinguishable from a
/// recomputed one.
std::vector<std::uint8_t> encode_result(const ArrayMcResult& result);
ArrayMcResult decode_result(util::ByteReader& r);

/// One chunk's worth of accumulated statistics. Produced one per RNG chunk
/// and merged pairwise in chunk-index order (exec::reduce_pairwise), which
/// makes the reduction independent of the thread schedule.
struct McPartial {
  /// acc[vdd_index][mode] (mode: kModeNominal / kModeWithPv).
  std::vector<std::array<PofAccumulator, 2>> acc;
  /// Strikes (histories) with any sensitive deposit.
  std::size_t hits = 0;
  /// Likelihood-ratio-weighted hit mass: Σ w over hitting strikes — equals
  /// `hits` exactly for the unit-weight estimator, and is the unbiased
  /// hit-fraction numerator under importance sampling.
  double weighted_hits = 0.0;

  McPartial() = default;
  explicit McPartial(std::size_t nv) : acc(nv) {}

  /// Merge for exec::parallel_reduce (associative; a absorbs b).
  static McPartial merge(McPartial a, McPartial b);

  /// Checkpoint-blob codec. The raw Welford state round-trips bit-exactly,
  /// so decode(encode(p)) merges identically to p itself — the property the
  /// resume-bit-identity guarantee rests on.
  std::vector<std::uint8_t> encode() const;
  static McPartial decode(const std::vector<std::uint8_t>& blob,
                          std::size_t expected_nv);
};

/// One (species, energy) evaluation point of an array engine. The unified
/// currency of the pipeline layer: SerFlow bins, campaign stage nodes and
/// per-bin artifacts are all keyed by it.
struct EnergyPoint {
  phys::Species species = phys::Species::kProton;
  double e_mev = 0.0;
  /// Optional energy-bin bounds [MeV] for within-bin energy stratification
  /// (stats::SamplingConfig::energy_strata). Both 0 = a point energy: every
  /// unit runs at e_mev exactly, stratification (if configured) is a no-op.
  double e_lo_mev = 0.0;
  double e_hi_mev = 0.0;

  /// Whether the bin bounds describe a usable energy range.
  bool has_range() const {
    return e_lo_mev > 0.0 && e_hi_mev > e_lo_mev;
  }
};

/// Common interface + shared chunked driver of ArrayMc / NeutronArrayMc.
class ArrayEngine {
 public:
  /// \param layout and \param model must outlive the engine.
  ArrayEngine(const sram::ArrayLayout& layout,
              const sram::CellSoftErrorModel& model);
  virtual ~ArrayEngine();

  ArrayEngine(const ArrayEngine&) = delete;
  ArrayEngine& operator=(const ArrayEngine&) = delete;

  /// Unified entry point: run the Monte Carlo at one energy point. Units
  /// (strikes or histories) are processed in fixed-size chunks on the exec
  /// thread pool; chunk *i* draws from stats::Rng::stream(seed, i), so the
  /// result is bit-identical for any thread count. Const and thread-safe:
  /// concurrent calls on one engine (e.g. parallel energy bins) are fine.
  ///
  /// \p run_opts adds checkpoint/cancel behaviour (ckpt::RunOptions): with a
  /// checkpoint path, each chunk's partial is persisted and a resumed run
  /// recomputes only the missing chunks — the pairwise reduction over the
  /// full chunk set makes the result bit-identical to an uninterrupted run.
  /// Cancellation throws util::Cancelled at a chunk boundary.
  ArrayMcResult run_point(const EnergyPoint& point, std::uint64_t seed,
                          const exec::ProgressSink& progress = {},
                          const ckpt::RunOptions& run_opts = {}) const;

  /// Area of the source-sampling plane [nm²]: (W + 2·margin)(H + 2·margin).
  /// This — not the bare array footprint — is the area POF estimates are
  /// normalized to, and therefore the area that enters the FIT integral.
  double sampled_area_nm2() const;

  /// Identity of one run for checkpoint/artifact validation: everything
  /// that decides the numbers (engine config, layout, model fingerprint,
  /// point, seed) and nothing about the schedule (threads, cadence).
  virtual std::uint64_t point_fingerprint(const EnergyPoint& point,
                                          std::uint64_t seed) const = 0;

  /// Units of Monte-Carlo work (strikes or histories) of one run.
  virtual std::size_t units() const = 0;

  const sram::ArrayLayout& layout() const { return *layout_; }
  const sram::CellSoftErrorModel& model() const { return *model_; }

 protected:
  /// Per-worker mutable state: the Transporter keeps internal scratch and
  /// the strike loop reuses per-cell charge slots, so each pool slot gets
  /// its own copy (created lazily on first chunk, on the worker's thread).
  struct WorkerScratch {
    phys::Transporter transporter;
    std::vector<sram::StrikeCharges> cell_charges;
    std::vector<std::uint32_t> touched_cells;
    std::vector<double> pofs;  ///< Per-touched-cell POFs of one strike.
    /// Cluster-path scratch (unused when cluster_surface() is null):
    /// touched cells keyed by (tile id, cell id), the per-tile surface query
    /// and the returned flip-count distribution.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> tile_order;
    std::vector<sram::ClusterPofSurface::CellCharge> cluster_query;
    std::vector<double> cluster_dist;

    WorkerScratch(const sram::ArrayLayout& layout,
                  const phys::Transporter::Config& tc);
  };

  // --- engine-specific knobs the shared driver needs -----------------------

  /// Units per deterministic RNG chunk.
  virtual std::size_t chunk_size() const = 0;
  /// Requested thread budget (0 = auto).
  virtual std::size_t threads() const = 0;
  /// Straggling model for the shared Transporter scratch.
  virtual phys::StragglingModel straggling() const = 0;
  /// Engine name for error messages ("ArrayMc" / "NeutronArrayMc").
  virtual const char* kind() const = 0;
  /// Progress-phase label ("strikes" / "histories").
  virtual const char* unit_label() const = 0;
  /// obs span/counter names (static storage — string literals).
  virtual const char* span_name() const = 0;
  virtual const char* runs_counter() const = 0;
  virtual const char* units_counter() const = 0;
  /// Lateral margin of the source-sampling plane [nm].
  virtual double source_margin_nm() const = 0;
  /// Cluster-level POF surface of the correlated multi-node charge
  /// collection mode, or nullptr for the independent per-cell path. When
  /// non-null, score_strike/score_weighted_history dispatch to
  /// score_clustered() instead of the per-cell LUT loop; the null default
  /// keeps every existing engine byte-identical. The surface may be shared
  /// across engines/threads (it locks internally) and must stay alive for
  /// the engine's lifetime.
  virtual sram::ClusterPofSurface* cluster_surface() const { return nullptr; }
  /// CI-driven early-stopping knobs (disabled by default). When enabled,
  /// run_point() executes chunks in deterministic geometric rounds
  /// (ckpt::round_boundaries) and stops at the first boundary where every
  /// (vdd, mode) accumulator's POF_tot 95% CI is within ci_stop().target
  /// relative half-width — a pure function of the merged chunk prefix, so
  /// the decision is identical at any thread/worker count and on resume.
  virtual const stats::CiStopConfig& ci_stop() const = 0;

  /// Simulate units [r.begin, r.end) of chunk r.index into \p part, drawing
  /// only from \p rng (= stats::Rng::stream(seed, r.index)) — plus, for QMC
  /// configurations, from point sets derived from \p seed and the *global*
  /// unit index (both invariant to chunking, preserving the determinism
  /// contract).
  virtual void simulate_chunk(const exec::ChunkRange& r,
                              const EnergyPoint& point, std::uint64_t seed,
                              stats::Rng& rng, WorkerScratch& ws,
                              McPartial& part) const = 0;

  // --- shared per-strike helpers (identical in both engines) ---------------

  /// Reset the per-cell charge slots touched by the previous strike.
  void begin_strike(WorkerScratch& ws) const;

  /// Fold a transported track's fin deposits into the per-cell sensitive
  /// charges (paper steps 2-3), tracking touched cells.
  void add_deposits(const phys::TrackResult& track, WorkerScratch& ws) const;

  /// Steps 4-5, unweighted (charged particles): cell POFs from the LUTs,
  /// combined via Eqs. 4-6, for every supply voltage and both PV modes.
  void score_strike(WorkerScratch& ws, McPartial& part) const;

  /// Weighted per-incident-neutron estimator: POFs scaled by \p weight, the
  /// n >= 1 multiplicity bins carry the interaction weight and the no-flip
  /// bin absorbs the rest so each history still contributes unit mass.
  void score_weighted_history(WorkerScratch& ws, McPartial& part,
                              double weight) const;

  /// Correlated scoring path (cluster_surface() non-null): touched cells
  /// group by layout tile; singleton tiles keep the per-cell LUT arithmetic
  /// while multi-cell tiles are priced by one joint flip-count distribution
  /// from the surface, convolved (saturating) into the multiplicity
  /// histogram. \p weighted selects the Horvitz–Thompson accumulation of
  /// score_weighted_history; unweighted calls pass weight = 1. Consumes no
  /// strike RNG, so chunk determinism is untouched.
  void score_clustered(sram::ClusterPofSurface& surface, WorkerScratch& ws,
                       McPartial& part, double weight, bool weighted) const;

  /// Supply voltages of the model (cached at construction).
  const std::vector<double>& vdds() const { return vdds_; }

 private:
  const sram::ArrayLayout* layout_;
  const sram::CellSoftErrorModel* model_;
  std::vector<double> vdds_;
};

/// Hash an array layout's result-relevant identity (dimensions, footprint,
/// stored bit pattern) — the shared tail of every engine/sweep fingerprint.
void hash_layout(util::Fnv1a& h, const sram::ArrayLayout& layout);

}  // namespace finser::core
