#pragma once
/// \file ser_flow.hpp
/// \brief End-to-end SER estimation flow (paper Fig. 6).
///
/// Orchestrates the three layers:
///   1. cell characterization → POF LUTs (cached on disk when a cache path
///      is configured — the paper builds its LUTs "only once" too);
///   2. array-level 3-D MC per (species, energy bin) → POF(E);
///   3. FIT integration over the environmental spectrum (Eq. 8).
///
/// All Monte-Carlo sizes scale with the FINSER_MC_SCALE environment
/// variable (default 1.0) so the same binaries run as quick smoke tests or
/// long high-fidelity campaigns.

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "finser/ckpt/checkpoint.hpp"
#include "finser/core/array_mc.hpp"
#include "finser/core/fit.hpp"
#include "finser/core/neutron_mc.hpp"
#include "finser/env/spectrum.hpp"
#include "finser/exec/progress.hpp"
#include "finser/sram/characterize.hpp"
#include "finser/sram/layout.hpp"

namespace finser::core {

/// Cache hook for per-(species, energy-bin) array-MC results, keyed by the
/// engine's point fingerprint (ArrayEngine::point_fingerprint — everything
/// that decides the numbers, nothing about the schedule). The pipeline layer
/// adapts its content-addressed ArtifactStore to this interface; core stays
/// independent of the store. Implementations must be thread-safe (bins run
/// in parallel) and never throw: a failed load is a miss (recompute), a
/// failed store is a lost cache entry (the result is already in memory).
/// Blobs round-trip through encode_result/decode_result bit-exactly, so a
/// cached bin is indistinguishable from a recomputed one.
class BinCache {
 public:
  virtual ~BinCache() = default;
  virtual bool load(std::uint64_t fingerprint,
                    std::vector<std::uint8_t>& out) = 0;
  virtual void store(std::uint64_t fingerprint,
                     const std::vector<std::uint8_t>& blob) = 0;
};

/// Full flow configuration.
struct SerFlowConfig {
  std::size_t array_rows = 9;  ///< Paper Sec. 6: a 9×9 array suffices.
  std::size_t array_cols = 9;
  sram::CellGeometry cell_geometry;
  sram::CellDesign cell_design;
  sram::DataPattern pattern = sram::DataPattern::kCheckerboard;
  std::uint64_t pattern_seed = 1;

  sram::CharacterizerConfig characterization;
  ArrayMcConfig array_mc;
  NeutronMcConfig neutron_mc;

  /// Energy discretization per species (paper Eq. 8's ranges).
  std::size_t proton_bins = 12;
  std::size_t alpha_bins = 10;
  std::size_t neutron_bins = 8;
  double proton_e_lo_mev = 0.1;  ///< Direct-ionization band.
  double proton_e_hi_mev = 100.0;
  double alpha_e_lo_mev = 0.5;
  double alpha_e_hi_mev = 10.0;
  double neutron_e_lo_mev = 1.0;  ///< Below ~1 MeV recoils are sub-critical.
  double neutron_e_hi_mev = 1000.0;

  /// Optional POF-LUT cache file (reused when the fingerprint matches).
  std::string lut_cache_path;

  std::uint64_t seed = 2024;

  /// Optional per-energy-bin result cache (non-owning; must outlive the
  /// flow). Campaigns plug the shared ArtifactStore in here so re-runs and
  /// sibling scenarios skip already-priced bins.
  BinCache* bin_cache = nullptr;

  /// Optional cache for the memoized cluster POF surface (non-owning; the
  /// same never-throw contract as bin_cache, "cluster_surface" artifact
  /// kind). Keyed by the surface fingerprint; entries are pure functions of
  /// their keys, so a preloaded surface only *skips* joint simulations — it
  /// can never change a result. Unused when array_mc.cluster is 1x1.
  BinCache* cluster_cache = nullptr;

  /// Total thread budget of the flow; 0 = auto (FINSER_THREADS, else
  /// hardware concurrency). sweep() splits it into an outer level over
  /// energy bins and an inner level over strikes; stage configs with
  /// explicit nonzero `threads` keep their own setting. Never affects
  /// results.
  std::size_t threads = 0;
};

/// Result of sweeping one spectrum.
struct EnergySweepResult {
  phys::Species species = phys::Species::kProton;
  std::vector<double> vdds;
  std::vector<env::EnergyBin> bins;
  std::vector<ArrayMcResult> per_bin;          ///< Aligned with bins.
  std::vector<std::array<FitResult, 2>> fit;   ///< [vdd_index][mode].
};

/// The cross-layer flow.
class SerFlow {
 public:
  explicit SerFlow(const SerFlowConfig& config);

  /// Characterized cell model (built lazily; loaded from cache if valid).
  /// With \p run active the characterization campaign itself is
  /// checkpointable/cancellable: its per-voltage checkpoint lives at
  /// `<run.checkpoint_path>.cell` so it never collides with the sweep
  /// checkpoint. A cache-save failure degrades to a warning — the model is
  /// already in memory and the run continues.
  const sram::CellSoftErrorModel& cell_model(
      const exec::ProgressSink& progress = {},
      const ckpt::RunOptions& run = {});

  /// Inject a pre-built cell model (campaigns share one characterization
  /// across scenarios). The model must carry the fingerprint this flow's
  /// configuration expects (model_fingerprint()) — an injected model is
  /// indistinguishable from one the flow would have characterized itself.
  void set_cell_model(sram::CellSoftErrorModel model);

  /// FNV-1a digest of the characterization inputs — the identity of the
  /// cell model this flow needs (cache/artifact key).
  std::uint64_t model_fingerprint() const {
    return config_.characterization.fingerprint(config_.cell_design);
  }

  const sram::ArrayLayout& layout() const { return layout_; }
  const SerFlowConfig& config() const { return config_; }

  /// Array MC at one fixed energy (used by the Fig.-8 reproduction).
  ArrayMcResult run_at_energy(phys::Species species, double e_mev,
                              const exec::ProgressSink& progress = {});

  /// Full spectrum sweep: POF(E) per bin + FIT integration (Figs. 9-11).
  /// Neutron spectra are dispatched to the forced-interaction neutron MC
  /// (indirect ionization — the paper's future-work extension); charged
  /// species use the direct-ionization ArrayMc. Bins run in parallel as the
  /// outer task level (per-bin seeds are pre-drawn in bin order, so results
  /// are thread-count-invariant), with the strike loops nested inside on
  /// the remaining thread budget.
  /// With \p run active the sweep is checkpointable and cancellable: the
  /// unit of work is one energy bin (blob = serialized ArrayMcResult), and
  /// run.cancel also interrupts *inside* a bin at strike-chunk granularity.
  /// Resuming with the same config and seed state is bit-identical to an
  /// uninterrupted sweep at any thread count. On cancellation throws
  /// util::Cancelled after flushing finished bins.
  EnergySweepResult sweep(const env::Spectrum& spectrum,
                          const exec::ProgressSink& progress = {},
                          const ckpt::RunOptions& run = {});

 private:
  /// The flow-owned cluster surface (nullptr when array_mc.cluster is 1x1),
  /// shared by every engine the flow builds so memoized joint simulations
  /// amortize across energy bins and scenarios.
  sram::ClusterPofSurface* ensure_cluster_surface();

  SerFlowConfig config_;
  sram::ArrayLayout layout_;
  std::optional<sram::CellSoftErrorModel> model_;
  std::unique_ptr<sram::ClusterPofSurface> cluster_surface_;
  std::uint64_t mc_seed_cursor_;
};

/// FINSER_MC_SCALE environment variable (default 1.0, clamped to > 0).
double mc_scale_from_env();

/// Multiply every Monte-Carlo size in \p config by \p scale (≥ minimum 1).
void apply_mc_scale(SerFlowConfig& config, double scale);

/// FINSER_CI_TARGET environment variable: target relative CI half-width for
/// the adaptive stopping rule. Returns -1 when unset or malformed (meaning
/// "no override"); 0 explicitly disables stopping; > 0 enables it.
double ci_target_from_env();

/// Apply a CI-target override to both Monte-Carlo engines. \p target < 0 is
/// a no-op (environment unset); 0 disables adaptive stopping; > 0 sets the
/// relative-half-width goal. The strike/history budgets stay as configured —
/// they become *ceilings* the stopper may undercut.
void apply_ci_target(SerFlowConfig& config, double target);

/// FINSER_CLUSTER environment variable: cluster-mode override ("1x1",
/// "2x2", "1x4"). Returns nullopt when unset; a malformed value warns on
/// stderr and returns nullopt (meaning "no override").
std::optional<sram::ClusterMode> cluster_mode_from_env();

/// Apply a cluster-mode override to the charged-particle engine config.
/// nullopt is a no-op (environment unset).
void apply_cluster(SerFlowConfig& config,
                   std::optional<sram::ClusterMode> mode);

}  // namespace finser::core
