#pragma once
/// \file neutron_mc.hpp
/// \brief Array-level Monte Carlo for neutron indirect ionization
/// (the paper's Sec.-7 future work, built on phys/neutron.hpp).
///
/// Neutrons interact so rarely (mean free path ~5 cm vs a ~2 µm die stack)
/// that analog sampling would waste virtually every history. The engine
/// uses the standard **forced-interaction** variance-reduction scheme:
/// every sampled neutron is forced to interact somewhere along its chord
/// through the interaction slab (the silicon within `interaction_depth_um`
/// of the fin layer), and the history carries the weight
///
///   w = Σ(E_n) · L_chord   (the true interaction probability, « 1),
///
/// so the POF estimator stays unbiased per *incident* neutron — the same
/// normalization the charged-particle ArrayMc uses, and therefore directly
/// pluggable into the Eq.-8 FIT integral. Secondaries (Si/Mg recoils,
/// alphas, protons) are transported with the ordinary charged-particle
/// machinery; recoils deposit locally, (n,α) alphas range over many cells.
///
/// The chunked history driver, accumulation and checkpoint plumbing live in
/// the common base (core/array_engine.hpp); this engine supplies the forced
/// interaction, secondary transport and the weighted estimator.

#include "finser/core/array_mc.hpp"
#include "finser/phys/neutron.hpp"

namespace finser::core {

/// Neutron-MC knobs.
struct NeutronMcConfig {
  std::size_t histories = 40000;  ///< Forced-interaction histories per energy.
  SourceAngularLaw angular = SourceAngularLaw::kIsotropic;
  phys::StragglingModel straggling = phys::StragglingModel::kAuto;
  /// Depth of the forced-interaction slab below the fin tops [um]. Covers
  /// the fins, the BOX and the top of the substrate/handle silicon from
  /// which recoils and reaction alphas can still reach the fin layer.
  double interaction_depth_um = 2.0;
  /// Lateral margin of the source plane [nm]; (n,α) alphas travel ~10 µm,
  /// so off-array interactions contribute and the default is generous.
  double source_margin_nm = 2000.0;
  /// Worker threads for the history loop; 0 = auto (FINSER_THREADS, else
  /// hardware concurrency). Results never depend on this value.
  std::size_t threads = 0;
  /// Histories per deterministic RNG chunk (see ArrayMcConfig::chunk).
  std::size_t chunk = 1024;
  /// Per-energy-point CI-driven early stopping (default off).
  stats::CiStopConfig ci;
};

/// Forced-interaction neutron array Monte Carlo.
class NeutronArrayMc final : public ArrayEngine {
 public:
  NeutronArrayMc(const sram::ArrayLayout& layout,
                 const sram::CellSoftErrorModel& model,
                 const NeutronMcConfig& config);

  /// Run at one neutron energy (legacy spelling of ArrayEngine::run_point;
  /// the point's species is ignored — every history is a neutron). The
  /// estimates are per *incident neutron* on the sampled plane (weights
  /// applied), so the result feeds integrate_fit() with the neutron
  /// spectrum exactly like the charged-particle results do.
  ArrayMcResult run(double e_n_mev, std::uint64_t seed,
                    const exec::ProgressSink& progress = {},
                    const ckpt::RunOptions& run_opts = {}) const {
    return run_point(EnergyPoint{phys::Species::kProton, e_n_mev}, seed,
                     progress, run_opts);
  }

  const NeutronMcConfig& config() const { return config_; }

  std::uint64_t point_fingerprint(const EnergyPoint& point,
                                  std::uint64_t seed) const override;
  std::size_t units() const override { return config_.histories; }

 protected:
  std::size_t chunk_size() const override { return config_.chunk; }
  std::size_t threads() const override { return config_.threads; }
  phys::StragglingModel straggling() const override {
    return config_.straggling;
  }
  const char* kind() const override { return "NeutronArrayMc"; }
  const char* unit_label() const override { return "histories"; }
  const char* span_name() const override { return "core.neutron_mc.run"; }
  const char* runs_counter() const override { return "core.neutron_mc.runs"; }
  const char* units_counter() const override {
    return "core.neutron_mc.histories";
  }
  double source_margin_nm() const override { return config_.source_margin_nm; }
  const stats::CiStopConfig& ci_stop() const override { return config_.ci; }

  void simulate_chunk(const exec::ChunkRange& r, const EnergyPoint& point,
                      std::uint64_t seed, stats::Rng& rng, WorkerScratch& ws,
                      McPartial& part) const override;

 private:
  NeutronMcConfig config_;
  phys::NeutronInteractionModel interactions_;
};

}  // namespace finser::core
