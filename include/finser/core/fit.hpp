#pragma once
/// \file fit.hpp
/// \brief Failure-In-Time rate integration (paper Sec. 5.2, Eqs. 7–8).
///
/// SER(FIT) = Σ_bins POF(E_rep) · IntFlux(bin) · Lx · Ly, with the result
/// expressed in FIT (failures per 10⁹ device-hours). POF here is the
/// conditional failure probability per particle crossing the Lx·Ly
/// footprint, which is exactly what ArrayMc estimates when strikes are
/// sampled uniformly over that footprint.

#include <vector>

#include "finser/core/array_mc.hpp"
#include "finser/env/spectrum.hpp"

namespace finser::core {

/// FIT-rate split of one (Vdd, mode).
struct FitResult {
  double fit_tot = 0.0;
  double fit_seu = 0.0;
  double fit_mbu = 0.0;
};

/// Integrate Eq. 8 over the discretized spectrum.
/// \param bins           energy bins with per-bin integral flux.
/// \param pof_per_bin    POF estimate at each bin's representative energy
///                       (same ordering as \p bins).
/// \param lx_nm, ly_nm   array footprint (paper's Lx, Ly).
FitResult integrate_fit(const std::vector<env::EnergyBin>& bins,
                        const std::vector<PofEstimate>& pof_per_bin,
                        double lx_nm, double ly_nm);

}  // namespace finser::core
