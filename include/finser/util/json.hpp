#pragma once
/// \file json.hpp
/// \brief Minimal JSON document model, writer, and parser.
///
/// Backs the finser::obs RunReport and Chrome-trace artifacts plus their
/// round-trip tests. Design constraints, in order:
///
///  1. **Deterministic output.** Objects preserve insertion order (stored as
///     a flat vector of key/value pairs, not a hash map) and numbers format
///     reproducibly: integers exactly, doubles via shortest-round-trip
///     %.17g. Two documents built by the same code path therefore serialize
///     byte-identically — the property the observability layer's
///     "metrics are bit-stable at any thread count" contract is tested on.
///  2. **No dependencies.** A few hundred lines beat vendoring a JSON
///     library the container does not have.
///  3. **Strict-enough parsing** for round-trip tests and report tooling:
///     UTF-8 pass-through, \uXXXX escapes, nesting-depth and trailing-junk
///     checks. Not a validator of exotic documents.
///
/// Errors throw util::Error with a byte offset.

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace finser::util {

/// One JSON value (tagged union). Copyable; cheap to move.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kInt, kUint, kDouble, kString, kArray, kObject };

  /// Defaults to null.
  JsonValue() = default;
  JsonValue(bool b) : kind_(Kind::kBool), bool_(b) {}                  // NOLINT
  JsonValue(int v) : kind_(Kind::kInt), int_(v) {}                     // NOLINT
  JsonValue(std::int64_t v) : kind_(Kind::kInt), int_(v) {}            // NOLINT
  JsonValue(std::uint64_t v) : kind_(Kind::kUint), uint_(v) {}         // NOLINT
  JsonValue(double v) : kind_(Kind::kDouble), double_(v) {}            // NOLINT
  JsonValue(const char* s) : kind_(Kind::kString), string_(s) {}       // NOLINT
  JsonValue(std::string s) : kind_(Kind::kString), string_(std::move(s)) {}  // NOLINT

  static JsonValue object() { return JsonValue(Kind::kObject); }
  static JsonValue array() { return JsonValue(Kind::kArray); }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::kNull; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_bool() const { return kind_ == Kind::kBool; }
  /// Any of the three numeric kinds.
  bool is_number() const {
    return kind_ == Kind::kInt || kind_ == Kind::kUint || kind_ == Kind::kDouble;
  }

  /// Typed access (throws util::Error on a kind mismatch).
  bool as_bool() const;
  std::int64_t as_int() const;    ///< kInt, or kUint/kDouble that fit exactly.
  std::uint64_t as_uint() const;  ///< kUint, or non-negative kInt.
  double as_double() const;       ///< Any numeric kind.
  const std::string& as_string() const;

  // --- object interface ---------------------------------------------------

  /// Insert-or-assign preserving insertion order; turns a null into an
  /// object first (throws on other kinds).
  JsonValue& operator[](const std::string& key);

  /// Lookup (throws util::Error when absent or not an object).
  const JsonValue& at(const std::string& key) const;

  bool contains(const std::string& key) const;
  const std::vector<std::pair<std::string, JsonValue>>& items() const;

  // --- array interface ----------------------------------------------------

  /// Append; turns a null into an array first (throws on other kinds).
  void push_back(JsonValue v);

  /// Element access (throws when out of range or not an array).
  const JsonValue& at(std::size_t index) const;

  /// Array/object element count (throws on scalar kinds).
  std::size_t size() const;

  // --- serialization ------------------------------------------------------

  /// Serialize. \p indent 0 → compact single line; > 0 → pretty-printed with
  /// that many spaces per level. Deterministic: insertion order, exact
  /// integer formatting, %.17g doubles (NaN/Inf are not representable in
  /// JSON and throw).
  std::string dump(int indent = 0) const;

  /// Parse a complete document (throws util::Error with a byte offset on
  /// malformed input or trailing non-whitespace).
  static JsonValue parse(const std::string& text);

  /// Structural equality (numeric kinds compare by exact value; kInt 3,
  /// kUint 3 and kDouble 3.0 are all equal).
  friend bool operator==(const JsonValue& a, const JsonValue& b);
  friend bool operator!=(const JsonValue& a, const JsonValue& b) { return !(a == b); }

 private:
  explicit JsonValue(Kind kind) : kind_(kind) {}

  void write(std::string& out, int indent, int depth) const;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  std::int64_t int_ = 0;
  std::uint64_t uint_ = 0;
  double double_ = 0.0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::vector<std::pair<std::string, JsonValue>> object_;
};

}  // namespace finser::util
