#pragma once
/// \file io.hpp
/// \brief Crash-safe file I/O primitives for binary artifacts.
///
/// Checkpoints and caches must never be observable in a half-written state:
/// a run killed mid-write would otherwise leave a torn file that a resumed
/// run could mistake for real data. atomic_write_file() therefore writes to
/// a sibling temp file, fsync()s it, and rename()s it over the target —
/// POSIX guarantees the target is always either the old or the new content.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace finser::util {

/// Atomically replace \p path with \p size bytes at \p data
/// (temp file + fsync + rename). Parent directories are created as needed.
/// Returns false (with the cause in \p error if non-null) on any failure;
/// the previous file content, if any, is left untouched in that case.
/// Honors the `io_write_fail` fault-injection site (util/fault.hpp).
bool atomic_write_file(const std::string& path, const void* data,
                       std::size_t size, std::string* error = nullptr);

/// Read a whole file into \p out. Returns false (with the cause in \p error
/// if non-null) when the file is missing or unreadable; never throws.
bool read_file(const std::string& path, std::vector<std::uint8_t>& out,
               std::string* error = nullptr);

}  // namespace finser::util
