#pragma once
/// \file fingerprint.hpp
/// \brief FNV-1a configuration fingerprints for cached/checkpointed artifacts.
///
/// A checkpoint or cache is only valid for the exact configuration that
/// produced it. Every serialized artifact therefore embeds a 64-bit FNV-1a
/// digest of the knobs its content depends on; a loader that sees a
/// different digest discards the file and recomputes. Knobs that provably do
/// *not* affect results (thread count, progress sinks, checkpoint intervals)
/// are deliberately left out so a run can resume under different execution
/// settings.

#include <cstdint>
#include <cstring>
#include <string>

namespace finser::util {

/// Incremental FNV-1a 64-bit hasher. Doubles are hashed by bit pattern, so
/// the fingerprint distinguishes everything bit-identity distinguishes.
class Fnv1a {
 public:
  Fnv1a& bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const unsigned char*>(data);
    for (std::size_t i = 0; i < size; ++i) {
      h_ ^= p[i];
      h_ *= 1099511628211ull;
    }
    return *this;
  }

  Fnv1a& u64(std::uint64_t v) { return bytes(&v, sizeof(v)); }

  Fnv1a& f64(double v) {
    std::uint64_t bits = 0;
    std::memcpy(&bits, &v, sizeof(bits));
    return u64(bits);
  }

  Fnv1a& str(const std::string& s) {
    u64(s.size());
    return bytes(s.data(), s.size());
  }

  std::uint64_t hash() const { return h_; }

 private:
  std::uint64_t h_ = 1469598103934665603ull;  // FNV offset basis.
};

}  // namespace finser::util
