#pragma once
/// \file checksum.hpp
/// \brief CRC-32 payload checksums for on-disk artifacts.
///
/// Checkpoints and POF-LUT caches are binary files that long campaigns write
/// and re-read across process lifetimes; a torn write, a truncated copy or a
/// flipped bit must be *detected* (and the artifact regenerated) rather than
/// silently parsed into garbage statistics. Every finser binary format
/// therefore carries a CRC-32 (the reflected 0xEDB88320 polynomial, as used
/// by zlib/PNG) over its payload.

#include <cstddef>
#include <cstdint>

namespace finser::util {

/// CRC-32 of \p size bytes at \p data, continuing from \p seed (pass the
/// previous return value to checksum a payload in pieces; start with 0).
std::uint32_t crc32(const void* data, std::size_t size, std::uint32_t seed = 0);

}  // namespace finser::util
