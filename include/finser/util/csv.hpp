#pragma once
/// \file csv.hpp
/// \brief Minimal CSV table writer for benchmark/experiment output.
///
/// Every bench binary emits the series behind one paper figure both to
/// stdout (human-readable columns) and to a CSV file under `bench_out/`, so
/// EXPERIMENTS.md can be regenerated mechanically.

#include <iosfwd>
#include <string>
#include <variant>
#include <vector>

namespace finser::util {

/// A simple rectangular table of doubles/strings with named columns.
class CsvTable {
 public:
  using Cell = std::variant<double, std::string>;

  /// \param columns header names (non-empty).
  explicit CsvTable(std::vector<std::string> columns);

  /// Append a row; must match the column count.
  void add_row(std::vector<Cell> row);

  std::size_t row_count() const { return rows_.size(); }
  std::size_t column_count() const { return columns_.size(); }

  /// Write as RFC-4180-ish CSV (numbers with %.9g precision).
  void write_csv(std::ostream& os) const;

  /// Write to a file path, creating parent directories if needed.
  void write_csv_file(const std::string& path) const;

  /// Write as an aligned human-readable text table.
  void write_pretty(std::ostream& os) const;

 private:
  std::vector<std::string> columns_;
  std::vector<std::vector<Cell>> rows_;
};

}  // namespace finser::util
