#pragma once
/// \file config.hpp
/// \brief INI-style key=value configuration parser for the CLI driver.
///
/// Grammar: one `key = value` pair per line; `#` and `;` start comments;
/// blank lines ignored; keys are dot-namespaced free-form strings
/// (e.g. `array.rows = 9`). Values are accessed through typed getters with
/// defaults; every access is recorded so unknown_keys() can flag typos —
/// a config file that silently ignores a misspelled knob is how wrong
/// simulation campaigns get published.

#include <map>
#include <string>
#include <vector>

namespace finser::util {

/// Levenshtein edit distance (insert / delete / substitute, unit costs).
std::size_t edit_distance(const std::string& a, const std::string& b);

/// Nearest candidate within edit distance ≤ 2 of \p unknown, or "" when no
/// candidate is that close. Ties break toward the smaller distance, then the
/// lexicographically first candidate — deterministic, so error messages are
/// stable across runs. Shared by the INI parser and the campaign parser for
/// "unknown key, did you mean ...?" diagnostics.
std::string nearest_key(const std::string& unknown,
                        const std::vector<std::string>& candidates);

/// Parsed key=value configuration with typed, tracked access.
class KeyValueConfig {
 public:
  KeyValueConfig() = default;

  /// Parse from text; throws InvalidArgument on malformed lines.
  static KeyValueConfig parse(const std::string& text);

  /// Parse a file; throws Error if unreadable.
  static KeyValueConfig parse_file(const std::string& path);

  bool has(const std::string& key) const;

  /// Typed getters: return the default when the key is absent; throw
  /// InvalidArgument when the value does not parse as the requested type.
  double get_double(const std::string& key, double fallback) const;
  long long get_int(const std::string& key, long long fallback) const;
  bool get_bool(const std::string& key, bool fallback) const;
  std::string get_string(const std::string& key, std::string fallback) const;

  /// Comma-separated list of doubles (e.g. "0.7, 0.8, 0.9").
  std::vector<double> get_double_list(const std::string& key,
                                      std::vector<double> fallback) const;

  /// Keys present in the file but never accessed through a getter.
  std::vector<std::string> unknown_keys() const;

  /// Nearest key the program actually asked a getter for (present in the
  /// file or not) within edit distance ≤ 2 of \p unknown; "" when nothing is
  /// that close. Callers turn unknown_keys() into "unknown config key
  /// `mc.strikse` (did you mean `mc.strikes`?)" — the missed-getter lookups
  /// are exactly the knobs the program supports, so they are the suggestion
  /// vocabulary.
  std::string suggestion_for(const std::string& unknown) const;

  /// 1-based source line of \p key (0 when absent). Getter errors embed it —
  /// "config value for array.rows (line 12) is not an integer" points the
  /// user at the offending line, not just the offending key.
  int line_of(const std::string& key) const;

  std::size_t size() const { return values_.size(); }

 private:
  /// One parsed `key = value` pair plus where it came from.
  struct Entry {
    std::string value;
    int line = 0;  ///< 1-based line number in the parsed text.
  };

  std::map<std::string, Entry> values_;
  mutable std::map<std::string, bool> accessed_;
  /// Every key a getter was asked for, present or not — the vocabulary of
  /// knobs the program supports, used by suggestion_for().
  mutable std::map<std::string, bool> requested_;
};

}  // namespace finser::util
