#pragma once
/// \file bytes.hpp
/// \brief Bounds-checked little-endian byte codec for binary artifacts.
///
/// Checkpoints, POF-LUT caches and per-chunk Monte-Carlo partials share one
/// encoding discipline: raw IEEE-754 doubles and 64-bit counters, written in
/// host order (finser artifacts are machine-local caches, not interchange
/// files). The reader is bounds-checked so a truncated or corrupted payload
/// surfaces as a typed util::Error instead of reading past the buffer —
/// the robustness layer turns that error into "regenerate", never a crash.
///
/// Round-tripping through this codec is bit-exact for doubles, which is what
/// makes checkpoint/resume reproduce uninterrupted runs to the last bit
/// (docs/robustness.md).

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

#include "finser/util/error.hpp"

namespace finser::util {

/// Append-only byte buffer with typed writers.
class ByteWriter {
 public:
  void u32(std::uint32_t v) { raw(&v, sizeof(v)); }
  void u64(std::uint64_t v) { raw(&v, sizeof(v)); }
  void f64(double v) { raw(&v, sizeof(v)); }

  void bytes(const void* data, std::size_t size) { raw(data, size); }

  void f64_vec(const std::vector<double>& v) {
    u64(v.size());
    raw(v.data(), v.size() * sizeof(double));
  }

  const std::vector<std::uint8_t>& data() const { return buf_; }
  std::vector<std::uint8_t> take() { return std::move(buf_); }
  std::size_t size() const { return buf_.size(); }

 private:
  void raw(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    buf_.insert(buf_.end(), p, p + size);
  }

  std::vector<std::uint8_t> buf_;
};

/// Bounds-checked reader over a byte span; throws util::Error on overrun.
class ByteReader {
 public:
  ByteReader(const void* data, std::size_t size)
      : p_(static_cast<const std::uint8_t*>(data)), end_(p_ + size) {}
  explicit ByteReader(const std::vector<std::uint8_t>& buf)
      : ByteReader(buf.data(), buf.size()) {}

  std::uint32_t u32() { return read<std::uint32_t>(); }
  std::uint64_t u64() { return read<std::uint64_t>(); }
  double f64() { return read<double>(); }

  void bytes(void* out, std::size_t size) {
    require(size);
    std::memcpy(out, p_, size);
    p_ += size;
  }

  std::vector<double> f64_vec() {
    const std::uint64_t n = u64();
    // An implausible length means corruption upstream of the CRC check (or a
    // format bug); refuse before attempting a multi-gigabyte allocation.
    FINSER_REQUIRE(n <= remaining() / sizeof(double),
                   "ByteReader: vector length exceeds remaining payload");
    std::vector<double> v(n);
    bytes(v.data(), n * sizeof(double));
    return v;
  }

  std::size_t remaining() const { return static_cast<std::size_t>(end_ - p_); }
  bool exhausted() const { return p_ == end_; }

 private:
  template <typename T>
  T read() {
    T v;
    bytes(&v, sizeof(T));
    return v;
  }

  void require(std::size_t size) {
    if (remaining() < size) {
      throw Error("ByteReader: truncated payload (need " + std::to_string(size) +
                  " bytes, have " + std::to_string(remaining()) + ")");
    }
  }

  const std::uint8_t* p_;
  const std::uint8_t* end_;
};

}  // namespace finser::util
