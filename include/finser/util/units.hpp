#pragma once
/// \file units.hpp
/// \brief Unit-conversion helpers.
///
/// finser's domain spans ~12 orders of magnitude (femtosecond current pulses
/// to hour-scale flux integrals, nanometre fins to centimetre dies). The
/// convention is: every variable carries its unit in the name, and all
/// conversions go through the constexpr helpers below so that no magic
/// factors appear at call sites.

namespace finser::util {

// ----- length ---------------------------------------------------------------

inline constexpr double nm_to_cm(double nm) { return nm * 1e-7; }
inline constexpr double cm_to_nm(double cm) { return cm * 1e7; }
inline constexpr double um_to_nm(double um) { return um * 1e3; }
inline constexpr double nm_to_um(double nm) { return nm * 1e-3; }
inline constexpr double um_to_cm(double um) { return um * 1e-4; }
inline constexpr double cm_to_um(double cm) { return cm * 1e4; }

// ----- energy ---------------------------------------------------------------

inline constexpr double mev_to_ev(double mev) { return mev * 1e6; }
inline constexpr double ev_to_mev(double ev) { return ev * 1e-6; }
inline constexpr double kev_to_mev(double kev) { return kev * 1e-3; }
inline constexpr double mev_to_kev(double mev) { return mev * 1e3; }

// ----- time -----------------------------------------------------------------

inline constexpr double fs_to_s(double fs) { return fs * 1e-15; }
inline constexpr double s_to_fs(double s) { return s * 1e15; }
inline constexpr double ps_to_s(double ps) { return ps * 1e-12; }
inline constexpr double s_to_ps(double s) { return s * 1e12; }
inline constexpr double ns_to_s(double ns) { return ns * 1e-9; }
inline constexpr double hour_to_s(double h) { return h * 3600.0; }
inline constexpr double s_to_hour(double s) { return s / 3600.0; }

// ----- charge ---------------------------------------------------------------

inline constexpr double fc_to_c(double fc) { return fc * 1e-15; }
inline constexpr double c_to_fc(double c) { return c * 1e15; }
inline constexpr double ac_to_c(double ac) { return ac * 1e-18; }

// ----- rate -----------------------------------------------------------------

/// Failures-in-time: failures per 1e9 device-hours.
inline constexpr double per_hour_to_fit(double per_hour) { return per_hour * 1e9; }

}  // namespace finser::util
