#pragma once
/// \file fault.hpp
/// \brief Deterministic fault injection for the robustness test suite.
///
/// The resilience machinery (checkpoint/restore, cache regeneration, solver
/// retry ladders) is only trustworthy if its failure paths are *exercised*,
/// so finser can inject its own faults, counter-deterministically — in the
/// spirit of gem5-based soft-error injection frameworks, but aimed at the
/// analysis pipeline itself.
///
/// Faults are configured through the FINSER_FAULT environment variable (or
/// fault_configure() in tests). Grammar, one or more comma-separated specs:
///
///   FINSER_FAULT=<site>:<n>[:<count>][,<site>:<n>...]
///
/// The site fires on hits n .. n+count-1 of its call counter (count
/// defaults to 1). Sites:
///
///   io_write_fail:N      the Nth atomic file write fails (checkpoint or
///                        POF-cache save) — the run must warn and continue
///   cache_flip:OFFSET    the first POF-cache save gets the byte at OFFSET
///                        XOR-flipped after the write — the next load must
///                        reject the file by CRC and regenerate
///   newton_diverge:N     the Nth strike transient throws NumericalError —
///                        characterization must count/exclude the sample
///   kill_after_flush:N   raise(SIGKILL) right after the Nth successful
///                        checkpoint flush — drives the kill-and-resume test
///   worker_kill_after_claim:N  a shard worker raises SIGKILL right after
///                        acknowledging its Nth stage assignment — the
///                        supervisor must reclaim the lease and reassign
///   lease_torn:N         the Nth lease-record write lands torn (only a
///                        prefix reaches disk, no atomic rename) — every
///                        reader must reject it by CRC and treat the record
///                        as absent/reclaimable
///   heartbeat_stall:N    from the Nth heartbeat tick on, a shard worker
///                        stops heartbeating and wedges at its next stage
///                        boundary — the supervisor must time it out, kill
///                        it and reassign its stage
///
/// All counters are process-global atomics: for a fixed thread count and
/// seed the firing point is deterministic. Shard workers are separate
/// processes, so their counters are per-worker; the supervisor does not
/// re-arm FINSER_FAULT for replacement workers it spawns after a death
/// (docs/sharding.md), which is what lets a one-shot fault prove recovery.

#include <cstdint>
#include <string>

namespace finser::util {

/// Injection sites (see the file comment for semantics).
enum class FaultSite : std::size_t {
  kIoWriteFail = 0,
  kCacheFlip,
  kNewtonDiverge,
  kKillAfterFlush,
  kWorkerKillAfterClaim,
  kLeaseTorn,
  kHeartbeatStall,
  kCount,
};

/// (Re)configure from a spec string; "" disables every site. Counters are
/// reset. Throws util::InvalidArgument on a malformed spec. Overrides any
/// FINSER_FAULT environment configuration.
void fault_configure(const std::string& spec);

/// Count one hit of \p site; true exactly when the configured window
/// [n, n+count) is hit. Reads FINSER_FAULT lazily on first use. Unconfigured
/// sites return false without counting (the disabled path is one relaxed
/// atomic load).
bool fault_fire(FaultSite site);

/// Configured argument of \p site (the N/OFFSET field; 0 when unconfigured).
std::uint64_t fault_arg(FaultSite site);

/// Hits counted so far for \p site (tests use this to locate a target call
/// index deterministically: configure an unreachable trigger, run once,
/// read the count).
std::uint64_t fault_count(FaultSite site);

}  // namespace finser::util
