#pragma once
/// \file error.hpp
/// \brief Typed errors and precondition checking.
///
/// Policy (per C++ Core Guidelines E.2/I.5): violated preconditions and
/// invalid runtime inputs throw typed exceptions carrying file:line context;
/// internal logic errors use the same mechanism so that tests can assert on
/// them (failure-injection suites rely on this).

#include <stdexcept>
#include <string>

namespace finser::util {

/// Base class for every error thrown by finser.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid argument / violated precondition at an API boundary.
class InvalidArgument : public Error {
 public:
  explicit InvalidArgument(const std::string& what) : Error(what) {}
};

/// Numerical failure (singular matrix, non-convergent iteration, ...).
class NumericalError : public Error {
 public:
  explicit NumericalError(const std::string& what) : Error(what) {}
};

/// Query outside the domain of a LUT or spectrum.
class DomainError : public Error {
 public:
  explicit DomainError(const std::string& what) : Error(what) {}
};

/// Violated internal usage contract (e.g. stamping into an Mna system whose
/// factorization already consumed it). Unlike InvalidArgument this flags a
/// bug in the *caller's sequencing*, not in the values it passed; tests
/// assert on it to pin the contract down.
class LogicError : public Error {
 public:
  explicit LogicError(const std::string& what) : Error(what) {}
};

/// Cooperative cancellation (SIGINT/SIGTERM or an exec::CancelToken). A run
/// that throws this after flushing a checkpoint is resumable; the CLI maps
/// it to exit code 4.
class Cancelled : public Error {
 public:
  explicit Cancelled(const std::string& what) : Error(what) {}
};

namespace detail {
[[noreturn]] void throw_require_failed(const char* expr, const char* file, int line,
                                       const std::string& msg);
}  // namespace detail

}  // namespace finser::util

/// Precondition check: throws finser::util::InvalidArgument on failure.
#define FINSER_REQUIRE(cond, msg)                                                   \
  do {                                                                              \
    if (!(cond)) {                                                                  \
      ::finser::util::detail::throw_require_failed(#cond, __FILE__, __LINE__, msg); \
    }                                                                               \
  } while (false)
