#pragma once
/// \file constants.hpp
/// \brief Physical constants and material data used across finser.
///
/// All constants are given in the unit system stated in each comment. finser
/// uses plain `double` with unit-suffixed names (energy_mev, length_nm, ...)
/// rather than a unit-typing library; this header is the single source of
/// truth for every physical number in the code base.

namespace finser::util {

// ---------------------------------------------------------------------------
// Fundamental constants (CODATA 2018).
// ---------------------------------------------------------------------------

/// Elementary charge [C].
inline constexpr double kElementaryChargeC = 1.602176634e-19;

/// One electron-volt [J].
inline constexpr double kElectronVoltJ = 1.602176634e-19;

/// Avogadro constant [1/mol].
inline constexpr double kAvogadro = 6.02214076e23;

/// Electron rest energy [MeV].
inline constexpr double kElectronMassMeV = 0.51099895;

/// Proton rest energy [MeV].
inline constexpr double kProtonMassMeV = 938.27208816;

/// Alpha particle (4He nucleus) rest energy [MeV].
inline constexpr double kAlphaMassMeV = 3727.3794066;

/// Speed of light [cm/s].
inline constexpr double kSpeedOfLightCmPerS = 2.99792458e10;

/// Bethe-Bloch prefactor K = 4*pi*N_A*r_e^2*m_e*c^2 [MeV*cm^2/mol].
inline constexpr double kBetheK = 0.307075;

/// Boltzmann kT/q at T = 300 K [V] (thermal voltage).
inline constexpr double kThermalVoltage300K = 0.025852;

// ---------------------------------------------------------------------------
// Silicon target data.
// ---------------------------------------------------------------------------

/// Silicon atomic number.
inline constexpr double kSiliconZ = 14.0;

/// Silicon molar mass [g/mol].
inline constexpr double kSiliconA = 28.0855;

/// Silicon density [g/cm^3].
inline constexpr double kSiliconDensity = 2.329;

/// Silicon mean excitation energy [eV] (ICRU-49).
inline constexpr double kSiliconMeanExcitationEV = 173.0;

/// Energy required to create one electron-hole pair in silicon [eV].
/// The paper (Sec. 3.2): "For every 3.6 eV of particle energy lost in
/// silicon, an electron-hole pair is generated."
inline constexpr double kSiliconEhPairEnergyEV = 3.6;

// ---------------------------------------------------------------------------
// Silicon dioxide (BOX) target data.
// ---------------------------------------------------------------------------

/// SiO2 effective Z/A ratio [mol/g]  (Z_total / molar mass = 30 / 60.083).
inline constexpr double kSio2ZOverA = 30.0 / 60.083;

/// SiO2 density (thermal oxide) [g/cm^3].
inline constexpr double kSio2Density = 2.20;

/// SiO2 mean excitation energy [eV] (ICRU).
inline constexpr double kSio2MeanExcitationEV = 139.2;

}  // namespace finser::util
