#pragma once
/// \file interp.hpp
/// \brief Tabulated-function interpolation used by every LUT in finser.
///
/// The cross-layer flow of the paper (Fig. 6) is LUT-driven: electron-hole
/// pair yields, POF tables and flux spectra are all tabulated once and then
/// interpolated millions of times inside Monte-Carlo loops. These classes
/// provide 1-D, 2-D and 3-D multilinear interpolation over monotonically
/// increasing (possibly non-uniform) axes, with selectable out-of-range and
/// axis-scaling policies.

#include <cstddef>
#include <vector>

namespace finser::util {

/// What to do when a query falls outside the tabulated axis range.
enum class OutOfRange {
  kClamp,  ///< Evaluate at the nearest edge (default; matches LUT semantics).
  kThrow,  ///< Throw DomainError.
  kZero,   ///< Return 0 (useful for flux tails).
};

/// Axis/value scaling for interpolation.
enum class Scale {
  kLinear,  ///< Interpolate in the raw coordinate.
  kLog,     ///< Interpolate in log-space (requires strictly positive data).
};

/// A strictly increasing coordinate axis with binary-search location.
class Axis {
 public:
  Axis() = default;

  /// \param points strictly increasing *finite* coordinates (size >= 2);
  ///               NaN/inf points throw InvalidArgument.
  /// \param scale  interpolation space for this axis.
  explicit Axis(std::vector<double> points, Scale scale = Scale::kLinear);

  /// Number of grid points.
  std::size_t size() const { return points_.size(); }

  /// Grid coordinate i (in original, untransformed units).
  double operator[](std::size_t i) const { return raw_[i]; }

  double front() const { return raw_.front(); }
  double back() const { return raw_.back(); }
  Scale scale() const { return scale_; }

  /// Original (untransformed) coordinates.
  const std::vector<double>& points() const { return raw_; }

  /// Result of locating a coordinate on the axis.
  struct Location {
    std::size_t index;  ///< Left grid index (in [0, size()-2]).
    double frac;        ///< Fractional position in [0, 1] within the cell.
    bool clamped;       ///< True if the query was outside the range.
  };

  /// Locate \p x on the axis, applying \p policy for out-of-range queries.
  /// A non-finite \p x throws DomainError under *every* policy — clamping
  /// an inf (or binary-searching a NaN) would silently mask the upstream
  /// bug that produced it.
  Location locate(double x, OutOfRange policy) const;

 private:
  std::vector<double> points_;  ///< In interpolation space (log-applied if kLog).
  std::vector<double> raw_;     ///< Original coordinates.
  Scale scale_ = Scale::kLinear;
};

/// 1-D tabulated function y(x) with linear/log interpolation.
class Grid1 {
 public:
  Grid1() = default;
  Grid1(Axis x, std::vector<double> values, Scale value_scale = Scale::kLinear,
        OutOfRange policy = OutOfRange::kClamp);

  double operator()(double x) const;

  const Axis& x_axis() const { return x_; }
  const std::vector<double>& values() const { return values_; }

  /// Trapezoidal integral of the tabulated function over its full range
  /// (computed in *linear* space regardless of the interpolation scales).
  double integrate() const;

  /// Trapezoidal integral over [a, b] (clipped to the axis range).
  double integrate(double a, double b) const;

 private:
  Axis x_;
  std::vector<double> values_;      ///< In interpolation space.
  std::vector<double> raw_values_;  ///< Original values.
  Scale value_scale_ = Scale::kLinear;
  OutOfRange policy_ = OutOfRange::kClamp;
};

/// 2-D tabulated function z(x, y), bilinear, row-major values (x outer).
class Grid2 {
 public:
  Grid2() = default;
  Grid2(Axis x, Axis y, std::vector<double> values,
        OutOfRange policy = OutOfRange::kClamp);

  double operator()(double x, double y) const;

  const Axis& x_axis() const { return x_; }
  const Axis& y_axis() const { return y_; }
  double at(std::size_t ix, std::size_t iy) const { return values_[ix * y_.size() + iy]; }

 private:
  Axis x_, y_;
  std::vector<double> values_;
  OutOfRange policy_ = OutOfRange::kClamp;
};

/// 3-D tabulated function w(x, y, z), trilinear, row-major (x outermost).
class Grid3 {
 public:
  Grid3() = default;
  Grid3(Axis x, Axis y, Axis z, std::vector<double> values,
        OutOfRange policy = OutOfRange::kClamp);

  double operator()(double x, double y, double z) const;

  const Axis& x_axis() const { return x_; }
  const Axis& y_axis() const { return y_; }
  const Axis& z_axis() const { return z_; }
  double at(std::size_t ix, std::size_t iy, std::size_t iz) const {
    return values_[(ix * y_.size() + iy) * z_.size() + iz];
  }

 private:
  Axis x_, y_, z_;
  std::vector<double> values_;
  OutOfRange policy_ = OutOfRange::kClamp;
};

/// Build a uniformly spaced axis with \p n points over [lo, hi].
Axis make_linear_axis(double lo, double hi, std::size_t n);

/// Build a logarithmically spaced axis with \p n points over [lo, hi] (both > 0),
/// interpolated in log-space.
Axis make_log_axis(double lo, double hi, std::size_t n);

}  // namespace finser::util
