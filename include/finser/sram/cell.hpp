#pragma once
/// \file cell.hpp
/// \brief 6T SOI-FinFET SRAM cell: netlist construction and strike simulation.
///
/// The cell under study (paper Fig. 5a) holds Q=1/QB=0. The transistors
/// sensitive to radiation are the three that are OFF with |Vds| = Vdd:
///
///   * the pull-down at Q        — strike current I1 pulls Q toward GND;
///   * the pull-up at QB         — strike current I2 pulls QB toward VDD;
///   * the pass-gate at QB       — strike current I3 injects from BLB (pre-
///                                 charged to VDD) into QB.
///
/// A StrikeSimulator owns one cell circuit and answers "does this strike
/// flip the cell?" for arbitrary charge combinations, supply voltages,
/// pulse shapes and per-transistor threshold shifts. It is the SPICE step
/// of the paper's flow (Sec. 4), executed tens of thousands of times during
/// characterization.

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "finser/phys/collection.hpp"
#include "finser/spice/batch.hpp"
#include "finser/spice/circuit.hpp"
#include "finser/spice/compiled.hpp"
#include "finser/spice/devices.hpp"
#include "finser/spice/transient.hpp"

namespace finser::sram {

/// The six transistors of a 6T cell. "L" is the Q side, "R" the QB side.
enum class Role : std::size_t {
  kPdL = 0,  ///< Pull-down NFET driving Q.
  kPuL = 1,  ///< Pull-up PFET driving Q.
  kPgL = 2,  ///< Pass-gate NFET at Q.
  kPdR = 3,  ///< Pull-down NFET driving QB.
  kPuR = 4,  ///< Pull-up PFET driving QB.
  kPgR = 5,  ///< Pass-gate NFET at QB.
};

inline constexpr std::size_t kRoleCount = 6;

/// Strike-current charge triple [fC] (paper Fig. 5a currents I1, I2, I3).
struct StrikeCharges {
  double i1_fc = 0.0;  ///< Into the OFF pull-down at the '1' node.
  double i2_fc = 0.0;  ///< Into the OFF pull-up at the '0' node.
  double i3_fc = 0.0;  ///< Into the OFF pass-gate at the '0' node.

  bool any() const { return i1_fc > 0.0 || i2_fc > 0.0 || i3_fc > 0.0; }
};

/// Per-transistor threshold shifts [V], indexed by Role.
using DeltaVt = std::array<double, kRoleCount>;

/// Cell topology.
enum class CellTopology {
  k6T,  ///< The paper's cell: shared read/write port (Fig. 5a).
  k8T,  ///< Read-decoupled cell: a 2-NFET read stack (gate on QB, gated by a
        ///< separate read wordline) buffers the storage nodes from the read
        ///< path. Retention SER is 6T-like; the read-disturb vulnerability
        ///< (see ablation_access_mode) disappears. Read-stack transistors
        ///< are not upset-sensitive — a strike there can only glitch the
        ///< read bitline, a transient read error rather than a bit flip.
};

/// Electrical design of the cell.
struct CellDesign {
  CellTopology topology = CellTopology::k6T;
  const spice::FinFetModel* nfet = nullptr;  ///< Default: default_nfet().
  const spice::FinFetModel* pfet = nullptr;  ///< Default: default_pfet().
  double nfin_pd = 1.0;  ///< Fins per pull-down.
  double nfin_pg = 1.0;  ///< Fins per pass-gate.
  double nfin_pu = 1.0;  ///< Fins per pull-up.
  /// Explicit storage-node capacitance [F]. Calibrated so the cell's
  /// critical charge spans ~0.11 fC (Vdd = 0.7 V) to ~0.18 fC (1.1 V):
  /// alpha strikes near the Bragg peak (~1800 pairs through a full fin
  /// chord) clear it at every Vdd, while low-energy-proton deposits (~800
  /// pairs peak) only clear it at low Vdd — the regime that produces the
  /// paper's Fig. 9 crossover (see EXPERIMENTS.md).
  double cnode_f = 0.17e-15;
  double sigma_vt = 0.050;    ///< Threshold-variation sigma [V] (Wang et al., 14 nm SOI).
  double temp_k = 300.0;      ///< Junction temperature [K].
  phys::FinTechnology tech;   ///< Fin geometry / mobility (pulse width).
};

/// Result of one strike transient.
struct StrikeOutcome {
  bool flipped = false;
  double final_q_v = 0.0;
  double final_qb_v = 0.0;
};

/// Operating condition of the cell during the strike.
enum class AccessMode {
  kRetention,  ///< Wordline low, bitlines precharged (the paper's scenario).
  kRead,       ///< Wordline high, bitlines held at the precharge level: the
               ///< read-disturb condition — the cell's weakest moment.
};

/// Which SPICE evaluation path a StrikeSimulator drives.
enum class SpiceEngine {
  /// Compile-once/evaluate-many: the cell circuit is lowered to a
  /// spice::CompiledCircuit at construction; every sample is a parameter
  /// rebind plus a solve against a persistent SolveWorkspace, and the DC
  /// hold state is cached per ΔVt vector (it is independent of the strike
  /// charges, so a whole Qcrit bisection shares one DC solve). Results are
  /// bit-identical to the reference engine.
  kCompiled,
  /// Polymorphic reference path: rebuilds solver scratch per solve, exactly
  /// the historical behavior. Kept as the equivalence baseline.
  kReference,
};

/// Reusable single-cell strike simulator at a fixed supply voltage.
class StrikeSimulator {
 public:
  StrikeSimulator(const CellDesign& design, double vdd_v,
                  AccessMode mode = AccessMode::kRetention,
                  SpiceEngine engine = SpiceEngine::kCompiled);

  StrikeSimulator(const StrikeSimulator&) = delete;
  StrikeSimulator& operator=(const StrikeSimulator&) = delete;

  /// Simulate a strike delivering \p charges with the given pulse shape
  /// kind and threshold shifts. The pulse width is the transit time
  /// τ = L²/(μ·Vdd) (paper Eq. 2).
  StrikeOutcome simulate(
      const StrikeCharges& charges, const DeltaVt& delta_vt = {},
      spice::PulseShape::Kind kind = spice::PulseShape::Kind::kRectangular);

  /// Per-lane result of simulate_batch(). A failed lane carries the text the
  /// scalar simulate() would have thrown as util::NumericalError.
  struct LaneOutcome {
    StrikeOutcome outcome;
    bool failed = false;
    std::string error;
  };

  /// Lane-batched simulate(): run \p charges[k] with \p dvts[k] for every k
  /// with \p active[k] != 0, advancing up to lane_width() of them in SIMD
  /// lockstep (larger groups are split internally; inactive lanes are masked
  /// off, and their \p out entries are left untouched). Each active lane's
  /// outcome — flip decision, final node voltages, failure text — is
  /// byte-identical to a scalar simulate() call with the same inputs; a
  /// failing lane is reported in \p out instead of thrown. Lane k keeps a
  /// ΔVt-keyed DC hold cache of its own (slot k % lane_width()), so a caller
  /// that keeps each sample in a stable lane across repeated calls — the
  /// characterizer's charge ladders do — pays one DC solve per sample.
  /// With the reference engine or lane_width() == 1 this degrades to the
  /// scalar loop (the byte-identity reference).
  void simulate_batch(
      const std::vector<StrikeCharges>& charges,
      const std::vector<DeltaVt>& dvts, spice::PulseShape::Kind kind,
      const std::vector<std::uint8_t>& active, std::vector<LaneOutcome>& out);

  /// Static-noise-margin style diagnostic: the hold-state solution.
  /// Returns {V(Q), V(QB)} of the DC operating point with no strike.
  std::array<double, 2> hold_state(const DeltaVt& delta_vt = {});

  double vdd() const { return vdd_v_; }
  const CellDesign& design() const { return design_; }
  AccessMode mode() const { return mode_; }
  SpiceEngine engine() const { return engine_; }

  /// Scale the strike pulse width relative to the transit time τ (default
  /// 1.0). The delivered charge is held constant, so this directly tests
  /// the paper's Sec.-4 claim that POF depends only on pulse area — see the
  /// pulse-shape ablation bench.
  void set_pulse_width_scale(double scale);
  double pulse_width_scale() const { return pulse_width_scale_; }

 private:
  void apply_delta_vt(const DeltaVt& delta_vt);
  std::vector<double> solve_hold(const DeltaVt& delta_vt);
  void set_strike_shapes(const StrikeCharges& charges,
                         spice::PulseShape::Kind kind);
  /// Compiled engine only; expects apply_delta_vt() + rebind() done.
  const std::vector<double>& hold_cached(const DeltaVt& delta_vt);

  CellDesign design_;
  double vdd_v_;
  AccessMode mode_ = AccessMode::kRetention;
  SpiceEngine engine_ = SpiceEngine::kCompiled;
  double tau_s_;  ///< Drift-collection pulse width [s].
  double pulse_width_scale_ = 1.0;

  spice::Circuit circuit_;
  std::size_t n_q_, n_qb_, n_vdd_, n_bl_, n_blb_, n_wl_;
  std::array<spice::Mosfet*, kRoleCount> fets_{};
  spice::PulseISource* src_i1_ = nullptr;
  spice::PulseISource* src_i2_ = nullptr;
  spice::PulseISource* src_i3_ = nullptr;
  spice::TransientOptions topt_;

  // Compiled-engine state: the lowered circuit, the per-simulator solver
  // workspace, and the ΔVt-keyed DC hold-state cache.
  std::optional<spice::CompiledCircuit> compiled_;
  spice::SolveWorkspace ws_;
  bool hold_valid_ = false;
  DeltaVt hold_dvt_{};
  std::vector<double> hold_x_;

  // Lane-batched state: the AoSoA workspace (configured lazily to the
  // current lane width) and one ΔVt-keyed DC hold cache per lane slot.
  spice::BatchWorkspace bw_;
  std::array<bool, spice::kMaxLaneWidth> hold_lane_valid_{};
  std::array<DeltaVt, spice::kMaxLaneWidth> hold_lane_dvt_{};
  std::array<std::vector<double>, spice::kMaxLaneWidth> hold_lane_x_{};
};

}  // namespace finser::sram
