#pragma once
/// \file snm.hpp
/// \brief Static noise margin (SNM) of the 6T cell — butterfly-curve analysis.
///
/// The SNM is the side of the largest square that fits inside the lobes of
/// the butterfly plot formed by the two cross-coupled inverter VTCs; it is
/// *the* classic stability metric of an SRAM cell and correlates directly
/// with the radiation-critical charge studied in the paper (a cell with a
/// shallow lobe flips on less deposited charge). finser computes it the
/// standard way: each half-cell VTC is swept with DC solves (pass gates
/// loaded per the access mode), the curves are rotated by 45°, and the SNM
/// of each lobe is the maximum rotated-axis separation divided by √2.

#include "finser/sram/cell.hpp"

namespace finser::sram {

/// Butterfly-curve result.
struct SnmResult {
  double snm_v = 0.0;        ///< min(lobe_high, lobe_low): the cell SNM.
  double lobe_high_v = 0.0;  ///< Square side of the upper-left lobe.
  double lobe_low_v = 0.0;   ///< Square side of the lower-right lobe.
};

/// Compute the static noise margin of the cell at \p vdd_v.
/// \param mode  kRetention → hold SNM; kRead → read SNM (pass gates on,
///              bitlines at the precharge level — always the smaller one).
/// \param delta_vt per-transistor threshold shifts (mismatch analysis).
/// \param samples  VTC sweep resolution (default 121 points).
SnmResult static_noise_margin(const CellDesign& design, double vdd_v,
                              AccessMode mode = AccessMode::kRetention,
                              const DeltaVt& delta_vt = {},
                              std::size_t samples = 121);

}  // namespace finser::sram
