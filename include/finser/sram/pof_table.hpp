#pragma once
/// \file pof_table.hpp
/// \brief Probability-of-failure LUTs of the characterized SRAM cell.
///
/// The paper stores "POF LUTs ... for different supply voltages, current
/// pulse magnitudes, and all possible combinations of current pulses"
/// (Sec. 4). Since the cell's response depends only on delivered charge
/// (validated in the paper and re-verified by our pulse-shape ablation),
/// tables are keyed by charge:
///
///  * single-current strikes — an exact empirical CDF of the per-sample
///    critical charge under threshold variation (smooth POF), plus the
///    nominal (variation-free) critical charge for the paper's
///    "neglecting process variation" mode (binary POF);
///  * two-current strikes  — bilinear POF grids (with-PV and nominal);
///  * three-current strike — trilinear POF grids.
///
/// One PofTable covers one supply voltage; CellSoftErrorModel aggregates
/// the swept voltages and provides binary (de)serialization so expensive
/// characterizations are cached across benchmark binaries.

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "finser/sram/cell.hpp"
#include "finser/util/bytes.hpp"
#include "finser/util/interp.hpp"

namespace finser::sram {

/// Empirical POF of a single strike current acting alone.
struct SingleCdf {
  /// Critical charge of the variation-free cell [fC];
  /// kNeverFlips if the nominal cell survives any tabulated charge.
  double nominal_qcrit_fc = 0.0;

  /// Sorted per-sample critical charges [fC] (finite values only).
  std::vector<double> qcrit_samples_fc;

  /// Total PV samples drawn (≥ qcrit_samples_fc.size(); the difference
  /// never flipped below the characterization ceiling).
  std::size_t total_samples = 0;

  /// PV samples whose bisection failed to converge numerically. They are
  /// *excluded* from the CDF (not counted as flips or survivals) and
  /// reported up through PofTable / the characterizer's failure-fraction
  /// check, so a solver hiccup degrades statistics honestly instead of
  /// biasing the POF.
  std::size_t failed_samples = 0;

  /// Sentinel critical charge for "does not flip below the ceiling".
  static constexpr double kNeverFlips = 1e30;

  /// POF(q) with process variation: fraction of samples flipped by q.
  double pof(double q_fc) const;

  /// POF(q) for the nominal cell (binary step).
  double pof_nominal(double q_fc) const;

  /// Mean / stddev of the finite critical-charge samples [fC].
  double mean_qcrit_fc() const;
  double stddev_qcrit_fc() const;
};

/// POF LUTs of one cell at one supply voltage.
class PofTable {
 public:
  double vdd_v = 0.0;
  double q_max_fc = 0.0;  ///< Characterization ceiling of the grids.

  /// Index 0 → I1 alone, 1 → I2 alone, 2 → I3 alone.
  std::array<SingleCdf, 3> singles;

  /// Pair grids; index 0 → (I1,I2), 1 → (I1,I3), 2 → (I2,I3);
  /// axes are the two charges [fC].
  std::array<util::Grid2, 3> pairs_pv;
  std::array<util::Grid2, 3> pairs_nominal;

  /// Triple grid over (I1,I2,I3) charges [fC].
  util::Grid3 triple_pv;
  util::Grid3 triple_nominal;

  /// Characterization sample bookkeeping across every stage that built this
  /// table (single CDFs + grid MC): attempted counts all strike
  /// simulations, failed the ones the solver gave up on (excluded from the
  /// LUT values; see CharacterizerConfig::max_failure_fraction).
  std::size_t attempted_samples = 0;
  std::size_t failed_samples = 0;

  /// POF for an arbitrary charge combination.
  /// \param with_pv true → process-variation tables; false → nominal cell.
  double pof(const StrikeCharges& charges, bool with_pv) const;

  /// Byte codec shared by the cache file and the characterizer's
  /// per-voltage checkpoints (util/bytes.hpp; read throws util::Error on a
  /// malformed payload).
  void write(util::ByteWriter& w) const;
  static PofTable read(util::ByteReader& r);

  /// Charges below this are treated as "no strike" [fC] (≈0.06 electrons).
  static constexpr double kChargeEpsFc = 1e-5;
};

/// Characterized model across the supply-voltage sweep.
class CellSoftErrorModel {
 public:
  std::vector<PofTable> tables;  ///< Sorted by vdd_v ascending.
  std::uint64_t config_fingerprint = 0;  ///< Validates cache files.

  /// Table at the given supply voltage (must match a characterized point
  /// within 1 mV; the paper evaluates fixed Vdd points, not a continuum).
  const PofTable& at_vdd(double vdd_v) const;

  /// Convenience dispatch.
  double pof(double vdd_v, const StrikeCharges& charges, bool with_pv) const;

  std::vector<double> vdds() const;

  /// Characterization failure bookkeeping summed over every table.
  std::size_t attempted_samples() const;
  std::size_t failed_samples() const;

  /// Binary serialization: versioned magic, CRC-32 over the payload,
  /// written atomically (temp + fsync + rename) so a crash mid-save can
  /// never leave a torn cache. Throws util::Error on I/O failure.
  void save(const std::string& path) const;

  /// Load a model; throws util::Error on I/O problems, a failed CRC, or a
  /// malformed payload.
  static CellSoftErrorModel load(const std::string& path);

  /// Load if the file exists, passes its integrity checks, *and* matches
  /// the fingerprint; returns false otherwise with the reject reason in
  /// \p reason (if non-null) and logged to stderr — never throws. A
  /// corrupted or stale cache therefore always degrades to
  /// re-characterization.
  static bool try_load(const std::string& path, std::uint64_t expected_fingerprint,
                       CellSoftErrorModel& out, std::string* reason = nullptr);
};

}  // namespace finser::sram
