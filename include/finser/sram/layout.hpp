#pragma once
/// \file layout.hpp
/// \brief 3-D layout of the 6T cell and the SRAM array (paper Fig. 5b, Sec. 5).
///
/// The array-level analysis needs to know, for every particle track, *which
/// transistors of which cells* it crosses. finser models each transistor's
/// sensitive volume as its fin channel region — a W_fin × L_gate × H_fin
/// silicon box under the gate — placed in a standard 14 nm "thin cell":
///
///   poly line A:  PD_L (left n-fin)  PU_L (left p-fin)   PG_R (right n-fin)
///   poly line B:  PG_L (left n-fin)  PU_R (right p-fin)  PD_R (right n-fin)
///
/// Cells tile into an array with the usual x-mirroring of odd columns and
/// y-mirroring of odd rows (shared wells/contacts), which is what makes
/// neighboring cells' sensitive fins adjacent — the geometric origin of
/// multi-bit upsets. Coordinates are nm: x along the wordline, y along the
/// bitline, z vertical with fins spanning [0, H_fin] on top of the BOX.

#include <cstdint>
#include <optional>
#include <vector>

#include "finser/geom/box_set.hpp"
#include "finser/sram/cell.hpp"

namespace finser::sram {

/// FinFET substrate topology. The paper studies SOI (its IBM focus) and
/// names bulk FinFETs as future work; finser implements both:
///  * **SOI** — the buried oxide blocks diffusion collection (paper
///    Sec. 3.3): only charge deposited in the fin itself is collected.
///  * **Bulk** — the fin sits on silicon; charge deposited in the substrate
///    under the drain junction is partially collected by funneling +
///    diffusion. Modeled as tiered collection volumes below each fin with
///    depth-decaying efficiency (the standard compact approximation of the
///    TCAD-observed collection profile, cf. the paper's refs [11][12]).
enum class TechnologyKind { kSoi, kBulk };

/// One depth tier of the bulk collection volume.
struct CollectionTier {
  double depth_lo_nm = 0.0;  ///< Top of the tier (below the fin base).
  double depth_hi_nm = 0.0;  ///< Bottom of the tier.
  double efficiency = 0.0;   ///< Fraction of deposited charge collected.
};

/// Geometric parameters of the thin cell [nm].
struct CellGeometry {
  double cell_w_nm = 380.0;  ///< Cell pitch along x (wordline direction).
  double cell_h_nm = 160.0;  ///< Cell pitch along y (bitline direction).
  double fin_w_nm = 10.0;
  double fin_h_nm = 26.0;
  double gate_len_nm = 20.0;
  double fin_pitch_nm = 48.0;  ///< Pitch of extra fins in multi-fin devices.

  double x_nfin_left_nm = 50.0;    ///< Left n-active fin column (PD_L / PG_L).
  double x_pfin_left_nm = 160.0;   ///< Left p-fin (PU_L).
  double x_pfin_right_nm = 220.0;  ///< Right p-fin (PU_R).
  double x_nfin_right_nm = 330.0;  ///< Right n-active fin column (PD_R / PG_R).
  double y_poly_a_nm = 40.0;       ///< Gate line A center.
  double y_poly_b_nm = 120.0;      ///< Gate line B center.

  int nfin_pd = 1;  ///< Fins per pull-down.
  int nfin_pg = 1;  ///< Fins per pass-gate.
  int nfin_pu = 1;  ///< Fins per pull-up.

  TechnologyKind technology = TechnologyKind::kSoi;

  /// Bulk-only: collection tiers under each fin (ignored for SOI).
  /// Defaults approximate the funneling/diffusion depth profile of a
  /// lightly doped substrate: strong collection within the first 100 nm,
  /// tailing off by ~600 nm.
  std::vector<CollectionTier> bulk_tiers = {
      {0.0, 100.0, 0.6}, {100.0, 300.0, 0.35}, {300.0, 600.0, 0.15}};
};

/// Stored data pattern of the array.
enum class DataPattern { kAllOnes, kAllZeros, kCheckerboard, kRandom };

/// Identity of one fin box in the array.
struct FinSite {
  std::uint32_t cell_row = 0;
  std::uint32_t cell_col = 0;
  Role role = Role::kPdL;
};

/// The SRAM array layout: fin boxes + ownership map + stored data.
class ArrayLayout {
 public:
  /// \param rows,cols   array dimensions in cells (e.g. 9×9 in the paper).
  /// \param pattern_seed used only for DataPattern::kRandom.
  ArrayLayout(std::size_t rows, std::size_t cols, const CellGeometry& geometry,
              DataPattern pattern = DataPattern::kCheckerboard,
              std::uint64_t pattern_seed = 1);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t cell_count() const { return rows_ * cols_; }
  const CellGeometry& geometry() const { return geometry_; }

  /// All fin boxes (ids are FinSite indices).
  const geom::BoxSet& fins() const { return fins_; }

  /// Owner of fin box \p fin_id.
  const FinSite& site(std::uint32_t fin_id) const;

  /// Stored bit of a cell.
  bool bit(std::size_t row, std::size_t col) const;

  /// Array footprint for the FIT integral (paper Eq. 7: Lx, Ly).
  double width_nm() const { return static_cast<double>(cols_) * geometry_.cell_w_nm; }
  double height_nm() const { return static_cast<double>(rows_) * geometry_.cell_h_nm; }

  /// Bounding box of all fins.
  geom::Aabb bounds() const { return fins_.bounds(); }

  /// Which strike current a deposit in a transistor feeds, given the cell's
  /// stored bit: 0 → I1, 1 → I2, 2 → I3, nullopt → transistor not sensitive.
  /// (Paper Fig. 5a: only the three OFF transistors with |Vds| = Vdd are
  /// sensitive; which three depends on the stored value.)
  static std::optional<int> strike_index(Role role, bool bit);

  /// Charge-collection efficiency of box \p fin_id: 1.0 for fin channels,
  /// the tier efficiency for bulk substrate collection volumes.
  double collection_efficiency(std::uint32_t fin_id) const;

 private:
  void build();

  std::size_t rows_, cols_;
  CellGeometry geometry_;
  DataPattern pattern_;
  std::uint64_t pattern_seed_;
  geom::BoxSet fins_;
  std::vector<FinSite> sites_;
  std::vector<double> efficiency_;
  std::vector<std::uint8_t> bits_;
};

}  // namespace finser::sram
