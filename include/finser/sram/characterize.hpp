#pragma once
/// \file characterize.hpp
/// \brief SRAM-cell soft-error characterization (paper Sec. 4).
///
/// Builds the POF LUTs by repeated strike simulation:
///
///  * **Single currents** — for each of I1/I2/I3 and each process-variation
///    sample (6 i.i.d. N(0, σ_Vt) threshold shifts) the critical charge is
///    bisected; the sorted sample set *is* the POF curve (an exact empirical
///    CDF rather than the paper's fixed 1000-run grid — smoother for the
///    same simulation budget).
///  * **Current pairs / triple** — POF grids over charge combinations. The
///    flip region is monotone (more charge never un-flips a cell — enforced
///    by tests), so the nominal boundary is found with per-row binary
///    search, and PV Monte Carlo is spent only on grid cells within ~4σ of
///    that boundary; everything else is deterministically 0 or 1.
///
/// Characterization cost is dominated by SPICE transients, so the expensive
/// stages run on the exec thread pool: PV samples, boundary-search rows and
/// near-boundary grid cells are independent work items, each drawing from
/// its own counter-derived RNG stream (stats::Rng::stream), which keeps the
/// model bit-identical for any thread count. A full 5-voltage model is a
/// few tens of seconds on one core and is cached on disk by the benches
/// (CellSoftErrorModel::save / try_load).

#include <cstdint>
#include <string>
#include <vector>

#include "finser/ckpt/checkpoint.hpp"
#include "finser/exec/progress.hpp"
#include "finser/sram/cell.hpp"
#include "finser/sram/pof_table.hpp"
#include "finser/stats/rng.hpp"

namespace finser::sram {

namespace detail {
struct SimSlots;  // Per-worker StrikeSimulator instances (characterize.cpp).
}  // namespace detail

/// Knobs of the characterization campaign.
struct CharacterizerConfig {
  std::vector<double> vdds = {0.7, 0.8, 0.9, 1.0, 1.1};
  std::size_t pv_samples_single = 200;  ///< Critical-charge samples per current.
  std::size_t pair_grid_points = 9;     ///< Grid points per pair axis.
  std::size_t triple_grid_points = 6;   ///< Grid points per triple axis.
  std::size_t pv_samples_grid = 48;     ///< MC samples per near-boundary cell.
  double q_max_fc = 0.4;                ///< Charge ceiling of all tables [fC].
  double bisect_tol_fc = 2e-4;          ///< Critical-charge resolution [fC].
  spice::PulseShape::Kind pulse_kind = spice::PulseShape::Kind::kRectangular;
  std::uint64_t seed = 0x5EEDCAFEull;
  /// Worker threads for the SPICE-transient stages; 0 = auto
  /// (FINSER_THREADS, else hardware concurrency). Deliberately NOT part of
  /// the fingerprint: the thread count never changes the model.
  std::size_t threads = 0;
  /// Tolerated fraction of PV strike samples whose solve fails numerically.
  /// Failed samples are counted and *excluded* from the LUT statistics
  /// (never treated as flip or no-flip); if their fraction exceeds this,
  /// characterization aborts with NumericalError — a solver that sick would
  /// bias the model, not just thin its statistics. Not fingerprinted: it
  /// gates, it never changes values.
  double max_failure_fraction = 0.05;

  /// Fingerprint of (config, design) for cache validation. Includes a
  /// characterization-scheme version, bumped whenever the RNG-consumption
  /// scheme changes, so stale disk caches are rebuilt.
  std::uint64_t fingerprint(const CellDesign& design) const;
};

/// Critical-charge bisection along a fixed charge direction:
/// returns the smallest scale s such that s·\p direction flips the cell,
/// or SingleCdf::kNeverFlips if \p s_max·direction does not flip it.
double bisect_critical_scale(StrikeSimulator& sim, const StrikeCharges& direction,
                             const DeltaVt& delta_vt, double s_max, double tol,
                             spice::PulseShape::Kind kind);

/// Build a charge axis for the pair/triple POF grids: a zero anchor, a dense
/// band bracketing the cell's critical-charge range [qc_lo, qc_hi], and a
/// sparse tail out to \p q_max_fc. Dense placement keeps the bilinear/
/// trilinear interpolation honest exactly where POF transitions 0 → 1
/// (a uniform axis smears phantom POF onto near-zero charge combinations).
util::Axis make_charge_axis(double qc_lo_fc, double qc_hi_fc, std::size_t points,
                            double q_max_fc);

/// Cell characterizer.
class CellCharacterizer {
 public:
  CellCharacterizer(const CellDesign& design, const CharacterizerConfig& config);

  /// Characterize every configured supply voltage. Voltage \p i (in sorted
  /// order) runs under seed stats::Rng::derive_seed(config.seed, i).
  ///
  /// With \p run active the campaign is checkpointable: the unit of work is
  /// one supply voltage (each checkpoint blob is a serialized PofTable), so
  /// a cancelled or killed run resumes after its last finished voltage and
  /// the final model is bit-identical to an uninterrupted run. Cancellation
  /// via run.cancel also interrupts *inside* a voltage (between strike
  /// simulations); only fully finished voltages are persisted.
  CellSoftErrorModel characterize(const exec::ProgressSink& progress = {},
                                  const ckpt::RunOptions& run = {}) const;

  /// Characterize one supply voltage under \p seed. Deterministic in
  /// (design, config, vdd_v, seed) — never in the thread count. Throws
  /// util::Cancelled if \p cancel fires (partial tables are never returned)
  /// and util::NumericalError if the failed-sample fraction exceeds
  /// CharacterizerConfig::max_failure_fraction.
  PofTable characterize_at(double vdd_v, std::uint64_t seed,
                           const exec::ProgressSink& progress = {},
                           const exec::CancelToken* cancel = nullptr) const;

  /// Draw one process-variation sample (6 threshold shifts).
  DeltaVt sample_delta_vt(stats::Rng& rng) const;

  const CharacterizerConfig& config() const { return config_; }
  const CellDesign& design() const { return design_; }

 private:
  // The expensive stages take the cancel token (polled between strike
  // simulations) and accumulate per-sample solver-failure bookkeeping into
  // attempted/failed (see PofTable::attempted_samples).
  SingleCdf characterize_single(exec::ThreadPool& pool, detail::SimSlots& sims,
                                int which, std::uint64_t seed,
                                const exec::CancelToken* cancel,
                                std::size_t& attempted, std::size_t& failed) const;
  void characterize_pair(exec::ThreadPool& pool, detail::SimSlots& sims, int a,
                         int b, const util::Axis& axis, double sigma_q_fc,
                         std::uint64_t seed, util::Grid2& pv,
                         util::Grid2& nominal, const exec::CancelToken* cancel,
                         std::size_t& attempted, std::size_t& failed) const;
  void characterize_triple(exec::ThreadPool& pool, detail::SimSlots& sims,
                           const util::Axis& axis, double sigma_q_fc,
                           std::uint64_t seed, util::Grid3& pv,
                           util::Grid3& nominal, const exec::CancelToken* cancel,
                           std::size_t& attempted, std::size_t& failed) const;

  CellDesign design_;
  CharacterizerConfig config_;
};

}  // namespace finser::sram
