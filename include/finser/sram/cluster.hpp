#pragma once
/// \file cluster.hpp
/// \brief Correlated multi-node charge collection: multi-cell strike
/// simulation and the joint-charge POF surface behind it.
///
/// The independent-cell strike path folds a track into per-cell charge
/// triples and prices each cell against its own POF LUT — cells never
/// interact. Rao & Desai (arXiv:1706.03315) show that in 14 nm FinFETs a
/// single strike collects charge on several nodes *simultaneously*, which
/// changes both the upset probability and the clustering shape of MBUs.
///
/// This layer adds the correlated alternative behind a `cluster` mode:
///
///  * ClusterSimulator — N coupled 6T cells lowered once into one
///    spice::CompiledCircuit: shared supply and wordline rails, shared
///    per-column bitlines (the electrical coupling path through the off
///    pass gates), per-cell storage nodes, threshold-shift rebind slots and
///    strike-current sources. Process-variation sampling runs lane-batched
///    through the AoSoA batch engine, so every lane's outcome is
///    byte-identical to a scalar evaluation at any `--lanes` width.
///
///  * ClusterPofSurface — the cluster-level analogue of the per-cell POF
///    LUT: a memoized map from the *quantized joint charge vector* of a
///    tile's struck cells to the distribution of the number of flipped
///    cells. A full LUT over N×3 charge axes is dimensionally hopeless
///    (docs/charge_sharing.md discusses the trade-off); instead entries are
///    computed on demand and every entry is a pure function of its key —
///    PV sample seeds derive from the key hash via stats::Rng::derive_seed
///    — so values are identical regardless of query order, thread count,
///    worker count, lane width or kill/resume history.
///
/// `cluster = 1x1` (the default) bypasses all of this: the engines keep the
/// independent per-cell path bit-for-bit.

#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "finser/sram/cell.hpp"

namespace finser::sram {

/// Cluster tiling mode of the strike pipeline.
enum class ClusterMode {
  k1x1,  ///< Independent cells — today's path, byte-identical.
  k2x2,  ///< 2×2 cell tiles (row and column neighbours correlate).
  k1x4,  ///< 1 row × 4 column tiles (wordline-direction MBU clusters).
};

/// Tile dimensions of a mode.
std::size_t cluster_rows(ClusterMode mode);
std::size_t cluster_cols(ClusterMode mode);

/// Canonical name ("1x1" / "2x2" / "1x4") and its inverse (nullopt on an
/// unknown name).
const char* cluster_mode_name(ClusterMode mode);
std::optional<ClusterMode> cluster_mode_from(const std::string& name);

/// Knobs of the correlated strike path. The defaults (mode 1x1) reproduce
/// the independent per-cell pipeline bit-for-bit.
struct ClusterConfig {
  ClusterMode mode = ClusterMode::k1x1;
  /// Fraction of a struck cell's collected charge that also appears on each
  /// adjacent (Manhattan distance 1) struck cell of the same tile — the
  /// multi-node charge-collection term of arXiv:1706.03315, applied to the
  /// dominant collection node (the off pull-down drain, current I1).
  double share_fraction = 0.12;
  /// Joint process-variation samples per surface entry (with-PV channel).
  std::size_t pv_samples = 24;
  /// Joint-charge quantization step [fC] of the surface keys. Queries are
  /// snapped to this grid *before* simulation, so a memo hit returns
  /// exactly what a fresh evaluation of the same key would.
  double quantum_fc = 0.005;

  bool enabled() const { return mode != ClusterMode::k1x1; }
};

/// Tile id of cell (row, col) under tile_rows × tile_cols clustering;
/// border tiles are ragged (smaller) when the array size is not a multiple
/// of the tile size.
inline std::uint32_t cluster_tile_id(std::uint32_t row, std::uint32_t col,
                                     std::size_t array_cols,
                                     std::size_t tile_rows,
                                     std::size_t tile_cols) {
  const auto tiles_per_row = static_cast<std::uint32_t>(
      (array_cols + tile_cols - 1) / tile_cols);
  return (row / static_cast<std::uint32_t>(tile_rows)) * tiles_per_row +
         col / static_cast<std::uint32_t>(tile_cols);
}

/// Position of cell (row, col) within its tile, as a flat local index
/// (local_row * tile_cols + local_col).
inline std::uint8_t cluster_local_index(std::uint32_t row, std::uint32_t col,
                                        std::size_t tile_rows,
                                        std::size_t tile_cols) {
  return static_cast<std::uint8_t>(
      (row % static_cast<std::uint32_t>(tile_rows)) * tile_cols +
      col % static_cast<std::uint32_t>(tile_cols));
}

/// Multi-cell strike simulator: tile_rows × tile_cols 6T cells in one
/// netlist at a fixed supply voltage (retention). Every cell is built in
/// the canonical Q=1/QB=0 frame (strike_index already folded the stored bit
/// into the I1/I2/I3 triple), cells of one tile column share their
/// bitlines, and all cells share the supply and (low) wordline rails. The
/// netlist is lowered once into a spice::CompiledCircuit; each evaluation
/// is a parameter rebind, never a rebuild.
class ClusterSimulator {
 public:
  ClusterSimulator(const CellDesign& design, double vdd_v,
                   std::size_t tile_rows, std::size_t tile_cols);

  ClusterSimulator(const ClusterSimulator&) = delete;
  ClusterSimulator& operator=(const ClusterSimulator&) = delete;

  /// One struck cell of the tile: flat local index + its charge triple.
  struct CellStrike {
    std::uint8_t local = 0;
    StrikeCharges charges;
  };

  /// Result of one joint transient. `flipped[i]` covers every tile cell
  /// (unstruck cells keep zero injection and cannot flip).
  struct Outcome {
    std::vector<std::uint8_t> flipped;
    std::size_t flip_count = 0;
    bool failed = false;
    std::string error;
  };

  /// Simulate one simultaneous strike into the tile. \p dvts carries one
  /// DeltaVt per tile cell (flat local order).
  Outcome simulate(const std::vector<CellStrike>& strikes,
                   const std::vector<DeltaVt>& dvts,
                   spice::PulseShape::Kind kind);

  /// Lane-batched simulate() over process-variation samples: sample s runs
  /// with \p dvt_samples[s], all sharing \p strikes. Samples are packed
  /// into SIMD lanes in index order; each lane's outcome is byte-identical
  /// to a scalar simulate() with the same inputs, so results do not depend
  /// on the configured lane width.
  void simulate_batch(const std::vector<CellStrike>& strikes,
                      const std::vector<std::vector<DeltaVt>>& dvt_samples,
                      spice::PulseShape::Kind kind, std::vector<Outcome>& out);

  std::size_t tile_rows() const { return tile_rows_; }
  std::size_t tile_cols() const { return tile_cols_; }
  std::size_t cell_count() const { return tile_rows_ * tile_cols_; }
  double vdd() const { return vdd_v_; }

 private:
  void bind(const std::vector<CellStrike>& strikes,
            const std::vector<DeltaVt>& dvts, spice::PulseShape::Kind kind);
  std::vector<double> hold_guess() const;
  Outcome finish_wave(const spice::Waveform& wave) const;

  CellDesign design_;
  double vdd_v_;
  std::size_t tile_rows_;
  std::size_t tile_cols_;
  double tau_s_;

  spice::Circuit circuit_;
  std::vector<std::size_t> n_q_, n_qb_;       ///< Per cell.
  std::vector<std::size_t> n_bl_, n_blb_;     ///< Per tile column.
  std::size_t n_vdd_ = 0, n_wl_ = 0;
  std::vector<std::array<spice::Mosfet*, kRoleCount>> fets_;  ///< Per cell.
  std::vector<std::array<spice::PulseISource*, 3>> srcs_;     ///< Per cell.
  std::vector<std::string> probes_;  ///< q0, qb0, q1, qb1, ...
  spice::TransientOptions topt_;

  std::optional<spice::CompiledCircuit> compiled_;
  spice::SolveWorkspace ws_;
  spice::BatchWorkspace bw_;
};

/// Memoized cluster-level POF surface: quantized joint charge vector →
/// flip-count distribution, one lazily built ClusterSimulator per supply
/// voltage. Thread-safe; every entry is a pure function of its key (PV
/// seeds derive from the key hash), so concurrent or repeated computes of
/// one key agree bit-for-bit and the memo is schedule-invariant.
class ClusterPofSurface {
 public:
  ClusterPofSurface(const CellDesign& design, const ClusterConfig& config);

  /// One struck cell of a tile instance, in surface-query form.
  struct CellCharge {
    std::uint8_t local = 0;  ///< Flat local index within the tile.
    StrikeCharges charges;
  };

  /// Distribution of the number of flipped cells of one simultaneously
  /// struck tile instance: out[k] = P(exactly k flips), k = 0..cells.size().
  /// \p cells must be sorted by local index (canonical key order).
  void flip_count_distribution(double vdd_v, bool with_pv,
                               const std::vector<CellCharge>& cells,
                               std::vector<double>& out);

  const ClusterConfig& config() const { return config_; }
  std::size_t tile_rows() const { return cluster_rows(config_.mode); }
  std::size_t tile_cols() const { return cluster_cols(config_.mode); }

  /// Number of memoized entries (diagnostics/tests).
  std::size_t size() const;

  /// Artifact identity of this surface's values: the cell-model fingerprint
  /// (a proxy for the cell design + characterization identity) plus every
  /// cluster knob that changes entries.
  std::uint64_t fingerprint(std::uint64_t model_fingerprint) const;

  /// Byte codec for ArtifactStore caching ("cluster_surface" kind): the
  /// memoized (key, distribution) entries. decode_merge() inserts entries
  /// that are not already present (values are pure functions of keys, so
  /// any subset from any worker is a valid cache) and returns the number
  /// of entries absorbed; it throws util::Error on a malformed payload.
  std::vector<std::uint8_t> encode() const;
  std::size_t decode_merge(const std::vector<std::uint8_t>& blob);

 private:
  using Key = std::vector<std::int64_t>;
  const std::vector<double>& evaluate_locked(const Key& key, double vdd_v,
                                             bool with_pv,
                                             const std::vector<CellCharge>& q);
  ClusterSimulator& simulator_locked(double vdd_v);

  CellDesign design_;
  ClusterConfig config_;
  mutable std::mutex mu_;
  std::map<Key, std::vector<double>> memo_;
  std::map<std::int64_t, std::unique_ptr<ClusterSimulator>> sims_;
};

}  // namespace finser::sram
