#pragma once
/// \file batch.hpp
/// \brief Lane-batched compiled transient engine (public surface).
///
/// Characterization solves millions of *independent* strike transients on the
/// same topology: PV samples never interact, so W of them can advance in
/// lockstep with every per-lane quantity held in AoSoA blocks of width W —
/// slot s of lane w lives at `array[s * W + w]`, the unit-stride inner
/// dimension the compiler auto-vectorizes. The lane loops are plain C++ (no
/// intrinsics): the arithmetic is elementwise IEEE-754 with no reductions
/// across lanes, so vectorizing it cannot change any lane's bits, and every
/// transcendental goes through the deterministic kernels of vecmath.hpp.
/// That is the bit-pinned contract (docs/spice.md): the batched engine is
/// **byte-identical** to the scalar compiled engine per lane, for every lane
/// width, at any thread count — W is a pure throughput knob.
///
/// Lanes are *masked, not branched around*: a converged, finished or failed
/// lane keeps riding the vector tick (its stamps and LU are computed and
/// discarded) until the whole group drains. Per-lane Newton bookkeeping —
/// damping, convergence, step control, the escalation ladder, steady-state
/// fast-forward — stays scalar per lane and mirrors engine_detail.hpp's
/// scalar transient loop statement for statement.
///
/// Width selection: the compiled default (`kDefaultLaneWidth`) picks the
/// widest vector unit the build targets; `set_lane_width()` / the
/// `FINSER_LANES` env var / the `--lanes` CLI flag override it at runtime
/// (0 = auto, 1 = the scalar reference). All widths {1, 4, 8} are always
/// compiled, so a vectorized build can be pinned to the scalar reference
/// without recompiling.

#include <array>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "finser/spice/compiled.hpp"
#include "finser/spice/transient.hpp"

namespace finser::spice {

/// Hard ceiling on the lane count (sizes the per-lane cold-state arrays).
inline constexpr std::size_t kMaxLaneWidth = 8;

/// Compile-time auto width: the widest SIMD unit the build targets.
/// FINSER_SCALAR_LANES (CMake option) forces the portable scalar default.
#if defined(FINSER_SCALAR_LANES)
inline constexpr std::size_t kDefaultLaneWidth = 1;
#elif defined(__AVX512F__)
inline constexpr std::size_t kDefaultLaneWidth = 8;
#else
inline constexpr std::size_t kDefaultLaneWidth = 4;
#endif

/// True for the widths the engine is instantiated at (0 = auto is accepted
/// by set_lane_width()).
inline constexpr bool lane_width_valid(std::size_t w) {
  return w == 0 || w == 1 || w == 4 || w == 8;
}

/// Resolved lane width of this process: the last set_lane_width() value if
/// any, else FINSER_LANES (invalid values are diagnosed on stderr and
/// ignored, mirroring FINSER_MC_SCALE), else kDefaultLaneWidth.
std::size_t lane_width();

/// Override the lane width (0 = back to auto). Throws util::InvalidArgument
/// unless lane_width_valid(w).
void set_lane_width(std::size_t w);

/// Preallocated AoSoA scratch of one lane-batched circuit: the per-lane
/// rebound parameters, reactive state, dense MNA blocks and solver vectors,
/// plus the per-lane cold state (pivot caches, breakpoints, fast-forward
/// rings). One workspace per (thread, compiled circuit); sized by
/// CompiledCircuit::batch_configure(). Hot arrays index as [slot * lanes + w].
struct BatchWorkspace {
  std::size_t lanes = 0;     ///< AoSoA width W (1, 4 or 8).
  std::size_t unknowns = 0;  ///< System size n (sans ground scratch).

  // --- Per-lane rebound parameters (see batch_rebind_lane) -----------------
  std::vector<double> vsrc_v;       ///< [vsource * W + w].
  std::vector<PulseShape> is_shape; ///< [isource * W + w].
  /// FinFetPlan split per field (p_type stays on the shared MosRec — device
  /// polarity is lane-invariant, which keeps it a uniform branch).
  struct MosLanes {
    std::vector<double> n, dibl, lambda, phi_t, vt_base, is, is_lambda,
        duf_dvgs, duf_dvds, dur_dvds;
  } mos;

  // --- Per-lane reactive state ---------------------------------------------
  std::vector<double> cap_v_prev;  ///< [capacitor * W + w].
  std::vector<double> cap_i_prev;

  // --- Dense MNA blocks (written by batch_stamp_fused) ---------------------
  std::vector<double> fa;  ///< (n² + 1) × W, ground scratch slot included.
  std::vector<double> fb;  ///< (n + 1) × W.

  // --- Solver vectors ------------------------------------------------------
  std::vector<double> x;      ///< n × W: committed state per lane.
  std::vector<double> x_try;  ///< n × W: Newton iterate per lane.
  std::vector<double> x_new;  ///< n × W: LU solution per lane.

  // --- Lane-blocked LU scratch ---------------------------------------------
  /// Physical-position → original-row map per lane, [pos * W + w]. The
  /// batched LU swaps rows *physically* (per lane) instead of indirecting
  /// through a permutation, so the elimination inner loops use uniform
  /// indices across lanes and vectorize regardless of per-lane pivot
  /// divergence; this map only feeds the pivot-order cache bookkeeping.
  std::vector<std::size_t> perm;
  std::array<Mna::PivotCache, kMaxLaneWidth> pivot;  ///< Per-lane caches.

  // --- Per-lane transient cold state (scalar access only) ------------------
  std::array<std::vector<double>, kMaxLaneWidth> breaks;
  std::array<std::array<SolveWorkspace::StateSnap, 8>, kMaxLaneWidth> ff_ring;
};

/// Per-lane results of one batched transient group. Lane w of the input maps
/// to index w here; lanes the caller left inactive (empty x0) come back with
/// an empty waveform and failed[w] == 0.
struct BatchTransientResult {
  std::vector<Waveform> waves;        ///< Size = lane count.
  std::vector<std::uint8_t> failed;   ///< 1 where the lane's run failed.
  /// The failure text per failed lane — the same message the scalar engine
  /// would have thrown as util::NumericalError for that transient.
  std::vector<std::string> errors;
};

/// Advance up to bw.lanes independent transients in lockstep. \p x0 supplies
/// one operating point per lane (size ≤ bw.lanes; an empty entry — or a
/// missing trailing one — marks the lane inactive, i.e. a masked-off ragged
/// tail). Per lane this computes byte-identical waveforms, device state and
/// failure text to scalar run_transient(cc, ws, x0[w], opt, probe_nodes);
/// a failed lane is reported in the result instead of thrown, and never
/// perturbs its neighbors. The circuit's per-lane parameters must have been
/// loaded with batch_rebind_lane() beforehand.
BatchTransientResult run_transient_batch(
    CompiledCircuit& cc, BatchWorkspace& bw,
    const std::vector<std::vector<double>>& x0, const TransientOptions& opt,
    const std::vector<std::string>& probe_nodes = {});

}  // namespace finser::spice
