#pragma once
/// \file finfet.hpp
/// \brief EKV-style compact model for 14 nm SOI FinFET devices.
///
/// The paper characterizes its SRAM cell with a proprietary SPICE flow on a
/// 14 nm SOI FinFET library (PTM-style, its refs [28][29]). finser's
/// substitute is a charge-based EKV-flavoured compact model:
///
///   v_p  = (v_gs − v_t,eff) / n,    v_t,eff = v_t0 + Δv_t − σ_DIBL·v_ds
///   I_DS = I_S · [F(v_p/φ_t) − F((v_p − v_ds)/φ_t)] · (1 + λ·v_ds)
///   F(u) = ln²(1 + e^{u/2}),        I_S = 2·n·φ_t²·k_p·n_fin
///
/// F interpolates smoothly between the subthreshold exponential and the
/// square-law saturation region; DIBL and channel-length modulation give
/// realistic output conductance. SOI FinFETs are modeled three-terminal
/// (floating body). PMOS devices use the same equations under voltage
/// reflection. Default cards are calibrated so that a one-fin NFET drives
/// ~60 µA at Vdd = 0.8 V (14 nm class) with ~72 mV/dec subthreshold slope.
///
/// Process variation enters as a per-device threshold shift Δv_t, sampled
/// N(0, σ_Vt) with σ_Vt = 40 mV by default (Wang et al., 14 nm SOI FinFET).

#include <cmath>

#include "finser/spice/vecmath.hpp"

namespace finser::spice {

/// Device polarity.
enum class MosType { kN, kP };

/// Model card (per-fin parameters; all voltages in V, currents in A).
struct FinFetModel {
  MosType type = MosType::kN;
  double vt0 = 0.25;     ///< Zero-bias threshold magnitude [V] at 300 K.
  double n = 1.25;       ///< Subthreshold slope factor.
  double kp = 4.0e-4;    ///< Transconductance parameter per fin [A/V²] at 300 K.
  double dibl = 0.06;    ///< DIBL coefficient [V/V].
  double lambda = 0.05;  ///< Channel-length modulation [1/V].

  /// Gate capacitance per fin [F] (lumped; split Cgs/Cgd by the netlist).
  double cgg_f = 0.04e-15;
  /// Drain junction/fringe capacitance per fin [F].
  double cdb_f = 0.03e-15;

  // --- Temperature behaviour (evaluated around T0 = 300 K) ---------------
  /// Threshold temperature coefficient [V/K] (|Vt| drops as T rises).
  double vt_tc_v_per_k = -0.7e-3;
  /// Phonon-limited mobility exponent: kp(T) = kp·(300/T)^m.
  double mobility_exponent = 1.5;
};

/// Evaluated large-signal operating point with small-signal derivatives.
struct MosOp {
  double ids = 0.0;  ///< Drain current, positive into the drain (NMOS).
  double gm = 0.0;   ///< dIds/dVgs.
  double gds = 0.0;  ///< dIds/dVds.
};

/// Evaluate the model at terminal voltages (drain/gate/source to ground).
/// \param delta_vt per-instance threshold shift (process variation) in the
///        *strengthening-positive* convention: a positive value raises |Vt|.
/// \param nfin     number of parallel fins.
/// \param temp_k   junction temperature [K]; scales the thermal voltage,
///        the threshold (vt_tc) and the mobility (kp·(300/T)^m).
MosOp evaluate_finfet(const FinFetModel& m, double vd, double vg, double vs,
                      double delta_vt, double nfin, double temp_k = 300.0);

/// Default NFET card of the 14 nm node.
const FinFetModel& default_nfet();

/// Default PFET card of the 14 nm node (lower kp: hole mobility deficit).
const FinFetModel& default_pfet();

namespace detail {

/// Softplus-squared EKV interpolation function F(u) = ln²(1 + e^{u/2}) and
/// its derivative F'(u) = ln(1 + e^{u/2}) · sigmoid(u/2). Shared (inline, one
/// definition) by evaluate_finfet() and the baked plan evaluation below so
/// the two paths cannot drift numerically.
struct FEval {
  double f;
  double df;
};

/// Select-based (branch-free) on the deterministic fexp/flog1p kernels of
/// vecmath.hpp: every regime's value is computed and the asymptotic ones
/// selected per the same thresholds the historical branchy form used
/// (half > 40: l = half exactly; half < -40: l ~ e^{u/2}, harmless
/// underflow). Selects instead of branches keep the function vectorizable
/// when the lane-batched engine inlines it into a loop over lanes, and the
/// shared kernels keep every engine path — reference, compiled scalar,
/// every batch width — bit-identical by construction (the bit-pinned
/// contract, docs/spice.md).
inline FEval ekv_f(double u) {
  const double half = 0.5 * u;
  const double e = fexp(half);
  const double l_mid = flog1p(e);                   // ln(1 + e^{u/2})
  const double sig_mid = 1.0 / (1.0 + fexp(-half));  // logistic(u/2)
  const double l = half > 40.0 ? half : (half < -40.0 ? e : l_mid);
  const double sig = half > 40.0 ? 1.0 : (half < -40.0 ? e : sig_mid);
  return {l * l, l * sig};
}

}  // namespace detail

/// Baked form of one Mosfet instance for the compile-once/evaluate-many hot
/// path: every sample-invariant subexpression of evaluate_finfet() — the
/// thermal voltage, the temperature-scaled transconductance (the only
/// std::pow in the model), the ΔVt-shifted threshold base and the derivative
/// prefactors — is evaluated once per rebind instead of once per Newton
/// iteration. Each field is computed by the *same expression, in the same
/// association order,* as the corresponding subexpression in
/// evaluate_finfet(), so evaluate_finfet_planned() is bit-identical to the
/// reference evaluation (pinned by tests/test_spice_compiled.cpp).
struct FinFetPlan {
  bool p_type = false;  ///< PMOS: evaluate reflected, flip the current sign.
  double n = 1.25;      ///< Subthreshold slope factor (copied from the card).
  double dibl = 0.0;
  double lambda = 0.0;
  double phi_t = 0.0;      ///< kThermalVoltage300K · T / 300.
  double vt_base = 0.0;    ///< vt0 + vt_tc·(T − 300) + Δvt.
  double is = 0.0;         ///< 2·n·φ_t²·kp(T)·nfin.
  double is_lambda = 0.0;  ///< is · λ.
  double duf_dvgs = 0.0;   ///< 1 / (n·φ_t).
  double duf_dvds = 0.0;   ///< σ_DIBL / (n·φ_t).
  double dur_dvds = 0.0;   ///< duf_dvds − 1/φ_t.
};

/// Bake a plan for one device instance (see FinFetPlan). Preconditions match
/// evaluate_finfet(): nfin > 0, temp_k > 0 — checked by the caller
/// (CompiledCircuit) once per rebind rather than once per evaluation.
FinFetPlan bake_finfet(const FinFetModel& m, double delta_vt, double nfin,
                       double temp_k);

/// Evaluate a baked plan at terminal voltages. Bit-identical to
/// evaluate_finfet(m, vd, vg, vs, delta_vt, nfin, temp_k) for the plan baked
/// from those parameters.
inline MosOp evaluate_finfet_planned(const FinFetPlan& p, double vd, double vg,
                                     double vs) {
  // Mirrors evaluate_finfet(): PMOS reflection first, then the
  // source-drain-swap frame translation around the vds >= 0 core.
  if (p.p_type) {
    vd = -vd;
    vg = -vg;
    vs = -vs;
  }
  const double vgs = vg - vs;
  const double vds = vd - vs;

  const auto core = [&p](double c_vgs, double c_vds) {
    const double vt_eff = p.vt_base - p.dibl * c_vds;
    const double vp = (c_vgs - vt_eff) / p.n;
    const detail::FEval ff = detail::ekv_f(vp / p.phi_t);
    const detail::FEval fr = detail::ekv_f((vp - c_vds) / p.phi_t);
    const double clm = 1.0 + p.lambda * c_vds;
    MosOp op;
    op.ids = p.is * (ff.f - fr.f) * clm;
    op.gm = p.is * clm * (ff.df * p.duf_dvgs - fr.df * p.duf_dvgs);
    op.gds = p.is * clm * (ff.df * p.duf_dvds - fr.df * p.dur_dvds) +
             p.is_lambda * (ff.f - fr.f);
    return op;
  };

  MosOp op;
  if (vds >= 0.0) {
    op = core(vgs, vds);
  } else {
    const MosOp sw = core(vg - vd, -vds);
    op.ids = -sw.ids;
    op.gm = -sw.gm;
    op.gds = sw.gm + sw.gds;
  }
  if (p.p_type) op.ids = -op.ids;
  return op;
}

}  // namespace finser::spice
