#pragma once
/// \file finfet.hpp
/// \brief EKV-style compact model for 14 nm SOI FinFET devices.
///
/// The paper characterizes its SRAM cell with a proprietary SPICE flow on a
/// 14 nm SOI FinFET library (PTM-style, its refs [28][29]). finser's
/// substitute is a charge-based EKV-flavoured compact model:
///
///   v_p  = (v_gs − v_t,eff) / n,    v_t,eff = v_t0 + Δv_t − σ_DIBL·v_ds
///   I_DS = I_S · [F(v_p/φ_t) − F((v_p − v_ds)/φ_t)] · (1 + λ·v_ds)
///   F(u) = ln²(1 + e^{u/2}),        I_S = 2·n·φ_t²·k_p·n_fin
///
/// F interpolates smoothly between the subthreshold exponential and the
/// square-law saturation region; DIBL and channel-length modulation give
/// realistic output conductance. SOI FinFETs are modeled three-terminal
/// (floating body). PMOS devices use the same equations under voltage
/// reflection. Default cards are calibrated so that a one-fin NFET drives
/// ~60 µA at Vdd = 0.8 V (14 nm class) with ~72 mV/dec subthreshold slope.
///
/// Process variation enters as a per-device threshold shift Δv_t, sampled
/// N(0, σ_Vt) with σ_Vt = 40 mV by default (Wang et al., 14 nm SOI FinFET).

namespace finser::spice {

/// Device polarity.
enum class MosType { kN, kP };

/// Model card (per-fin parameters; all voltages in V, currents in A).
struct FinFetModel {
  MosType type = MosType::kN;
  double vt0 = 0.25;     ///< Zero-bias threshold magnitude [V] at 300 K.
  double n = 1.25;       ///< Subthreshold slope factor.
  double kp = 4.0e-4;    ///< Transconductance parameter per fin [A/V²] at 300 K.
  double dibl = 0.06;    ///< DIBL coefficient [V/V].
  double lambda = 0.05;  ///< Channel-length modulation [1/V].

  /// Gate capacitance per fin [F] (lumped; split Cgs/Cgd by the netlist).
  double cgg_f = 0.04e-15;
  /// Drain junction/fringe capacitance per fin [F].
  double cdb_f = 0.03e-15;

  // --- Temperature behaviour (evaluated around T0 = 300 K) ---------------
  /// Threshold temperature coefficient [V/K] (|Vt| drops as T rises).
  double vt_tc_v_per_k = -0.7e-3;
  /// Phonon-limited mobility exponent: kp(T) = kp·(300/T)^m.
  double mobility_exponent = 1.5;
};

/// Evaluated large-signal operating point with small-signal derivatives.
struct MosOp {
  double ids = 0.0;  ///< Drain current, positive into the drain (NMOS).
  double gm = 0.0;   ///< dIds/dVgs.
  double gds = 0.0;  ///< dIds/dVds.
};

/// Evaluate the model at terminal voltages (drain/gate/source to ground).
/// \param delta_vt per-instance threshold shift (process variation) in the
///        *strengthening-positive* convention: a positive value raises |Vt|.
/// \param nfin     number of parallel fins.
/// \param temp_k   junction temperature [K]; scales the thermal voltage,
///        the threshold (vt_tc) and the mobility (kp·(300/T)^m).
MosOp evaluate_finfet(const FinFetModel& m, double vd, double vg, double vs,
                      double delta_vt, double nfin, double temp_k = 300.0);

/// Default NFET card of the 14 nm node.
const FinFetModel& default_nfet();

/// Default PFET card of the 14 nm node (lower kp: hole mobility deficit).
const FinFetModel& default_pfet();

}  // namespace finser::spice
