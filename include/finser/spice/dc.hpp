#pragma once
/// \file dc.hpp
/// \brief Nonlinear DC operating-point solver.
///
/// Damped Newton–Raphson over the MNA companion linearization, globalized by
/// gmin stepping (a conductance from every node to ground, stepped down to
/// zero). SRAM cells are bistable: the solver converges to the stable state
/// in whose basin the initial guess lies, which is exactly how the cell's
/// logical state is selected before a strike simulation.

#include <vector>

#include "finser/spice/circuit.hpp"

namespace finser::spice {

class CompiledCircuit;
struct SolveWorkspace;

/// Options for the operating-point solve.
struct DcOptions {
  int max_iterations = 200;       ///< Newton iterations per gmin stage.
  double v_tol = 1e-9;            ///< Convergence: max |Δx| below this [V/A].
  double damping_vmax = 0.3;      ///< Max per-iteration voltage move [V].
  /// gmin continuation schedule. The final stage keeps a residual 1e-12 S
  /// shunt (standard SPICE practice) so floating nodes — e.g. a capacitor
  /// with no DC path — stay solvable; it is ~6 orders below any device
  /// conductance that matters here.
  std::vector<double> gmin_steps = {1e-3, 1e-5, 1e-7, 1e-9, 1e-12};
  /// Retry ladder: when a gmin stage fails, the solver restores the last
  /// converged iterate and inserts an intermediate stage (the geometric
  /// midpoint of the failed step), up to this many times across the whole
  /// continuation, before giving up with NumericalError. 0 disables the
  /// ladder (strict single-pass schedule).
  int max_gmin_extensions = 8;
};

/// Solve the DC operating point of \p circuit.
/// \param initial_guess optional starting vector (unknown_count() wide);
///        pass the intended SRAM state to select the bistable branch.
/// \returns the solution vector (node voltages then branch currents).
/// \throws util::NumericalError if any gmin stage fails to converge.
std::vector<double> solve_dc(const Circuit& circuit,
                             const std::vector<double>& initial_guess = {},
                             const DcOptions& options = {});

/// Compiled hot-path overload: same algorithm and bit-identical results, but
/// stamps through the devirtualized plan and keeps all solver scratch (MNA
/// system, pivot cache, Newton vectors) in the caller-owned \p ws so repeated
/// solves allocate nothing. See spice/compiled.hpp and docs/spice.md.
std::vector<double> solve_dc(CompiledCircuit& circuit, SolveWorkspace& ws,
                             const std::vector<double>& initial_guess = {},
                             const DcOptions& options = {});

}  // namespace finser::spice
