#pragma once
/// \file mna.hpp
/// \brief Modified nodal analysis system and dense LU solver.
///
/// SRAM-cell circuits are tiny (≈10 unknowns), so the system is a dense
/// row-major matrix solved by in-place LU with partial pivoting. Unknowns
/// are node voltages (ground eliminated) followed by voltage-source branch
/// currents. The sentinel kGround marks the eliminated reference node;
/// stamps touching it are silently dropped, which keeps device stamping
/// branch-free at call sites.
///
/// **Lifecycle contract.** The factorization destroys the assembled system
/// in place, so a consumed Mna must be clear()ed and restamped before the
/// next solve. Stamping into (or re-solving) a consumed system throws
/// util::LogicError — the check is a single branch per stamp, cheap enough
/// to stay on in release builds so the contract is enforced everywhere, not
/// just under NDEBUG-less CI.
///
/// **Pivot reuse.** Fixed-topology resolves (Newton iterations, transient
/// steps) factor near-identical matrices over and over; solve_with_cache()
/// carries the pivot sequence of the previous factorization across calls.
/// The cached order is *verified* during the same column scan partial
/// pivoting performs anyway: whenever the cached pivot still wins the
/// column (the overwhelmingly common case — counted as
/// `spice.mna.pivot_reuse`), the elimination is bit-for-bit the one fresh
/// pivoting would have produced; the moment a cached pivot falls below the
/// column winner, the factorization falls back to fresh partial pivoting
/// from that column on (`spice.mna.pivot_refactor`). Numerics are therefore
/// always identical to solve() — the cached path trades the allocation and
/// permutation bookkeeping of the fresh path, not accuracy.

#include <cstddef>
#include <vector>

namespace finser::spice {

/// Index of the eliminated reference node.
inline constexpr std::size_t kGround = static_cast<std::size_t>(-1);

/// Dense MNA system A·x = b.
class Mna {
 public:
  explicit Mna(std::size_t size);

  /// Pivot-order memory for fixed-topology resolves (see file comment).
  /// One cache belongs to one matrix topology; invalidate() (or simply a
  /// size mismatch) forces the next factorization to run fully fresh.
  struct PivotCache {
    std::vector<std::size_t> perm;
    bool valid = false;

    void invalidate() { valid = false; }
  };

  std::size_t size() const { return n_; }

  /// Zero the matrix and right-hand side (reused across Newton iterations)
  /// and re-arm a consumed system for restamping.
  void clear();

  /// A[i][j] += g  (no-op when either index is kGround).
  void add(std::size_t i, std::size_t j, double g);

  /// b[i] += v  (no-op for kGround).
  void add_rhs(std::size_t i, double v);

  /// Add \p gmin from each of the first \p n_nodes unknowns to ground
  /// (Newton globalization aid).
  void add_gmin(double gmin, std::size_t n_nodes);

  double matrix_at(std::size_t i, std::size_t j) const { return a_[i * n_ + j]; }
  double rhs_at(std::size_t i) const { return b_[i]; }

  /// Solve in place; throws util::NumericalError on a (near-)singular matrix.
  /// The system is destroyed by the factorization; call clear() + restamp
  /// before the next solve (enforced: see the lifecycle contract above).
  std::vector<double> solve();

  /// Solve in place into \p x_out (resized to size()), reusing \p cache as
  /// the predicted pivot sequence and updating it with the realized one.
  /// Bit-identical to solve() by construction; avoids the per-call result
  /// allocation and counts pivot reuse vs refactorization in finser::obs.
  void solve_with_cache(PivotCache& cache, std::vector<double>& x_out);

 private:
  /// Shared factorization + back substitution (see solve/solve_with_cache).
  void factor_and_solve(PivotCache* cache, std::vector<double>& x_out);

  std::size_t n_;
  std::vector<double> a_;  ///< Row-major n×n.
  std::vector<double> b_;
  std::vector<std::size_t> perm_;  ///< Pivot scratch.
  bool consumed_ = false;  ///< Set by the factorization, reset by clear().
};

}  // namespace finser::spice
