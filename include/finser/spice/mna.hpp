#pragma once
/// \file mna.hpp
/// \brief Modified nodal analysis system and dense LU solver.
///
/// SRAM-cell circuits are tiny (≈10 unknowns), so the system is a dense
/// row-major matrix solved by in-place LU with partial pivoting. Unknowns
/// are node voltages (ground eliminated) followed by voltage-source branch
/// currents. The sentinel kGround marks the eliminated reference node;
/// stamps touching it are silently dropped, which keeps device stamping
/// branch-free at call sites.

#include <cstddef>
#include <vector>

namespace finser::spice {

/// Index of the eliminated reference node.
inline constexpr std::size_t kGround = static_cast<std::size_t>(-1);

/// Dense MNA system A·x = b.
class Mna {
 public:
  explicit Mna(std::size_t size);

  std::size_t size() const { return n_; }

  /// Zero the matrix and right-hand side (reused across Newton iterations).
  void clear();

  /// A[i][j] += g  (no-op when either index is kGround).
  void add(std::size_t i, std::size_t j, double g);

  /// b[i] += v  (no-op for kGround).
  void add_rhs(std::size_t i, double v);

  /// Add \p gmin from each of the first \p n_nodes unknowns to ground
  /// (Newton globalization aid).
  void add_gmin(double gmin, std::size_t n_nodes);

  double matrix_at(std::size_t i, std::size_t j) const { return a_[i * n_ + j]; }
  double rhs_at(std::size_t i) const { return b_[i]; }

  /// Solve in place; throws util::NumericalError on a (near-)singular matrix.
  /// The system is destroyed by the factorization; call clear() + restamp
  /// before the next solve.
  std::vector<double> solve();

 private:
  std::size_t n_;
  std::vector<double> a_;  ///< Row-major n×n.
  std::vector<double> b_;
  std::vector<std::size_t> perm_;  ///< Pivot scratch.
};

}  // namespace finser::spice
