#pragma once
/// \file transient.hpp
/// \brief Transient analysis with event-aware adaptive time stepping.
///
/// Strike simulations resolve a ~10 fs current pulse inside a ~100 ps
/// settling window — four orders of magnitude of time scale. The solver
/// handles this with hard breakpoints at source edges (steps land exactly
/// on them and the step size is reset after each), geometric step growth
/// while Newton converges easily, and step rejection/shrinking on
/// convergence failure. Integrators: backward Euler (robust default) and
/// trapezoidal (2nd order, used by accuracy cross-checks).

#include <iosfwd>
#include <string>
#include <vector>

#include "finser/spice/circuit.hpp"

namespace finser::spice {

class CompiledCircuit;
struct SolveWorkspace;

/// Recorded node waveforms of one transient run.
class Waveform {
 public:
  Waveform(std::vector<std::string> names, std::vector<std::size_t> nodes);

  void append(double t, const std::vector<double>& x);

  std::size_t probe_count() const { return nodes_.size(); }
  std::size_t sample_count() const { return times_.size(); }
  const std::vector<double>& times() const { return times_; }
  const std::string& probe_name(std::size_t p) const { return names_[p]; }

  /// Probe index by name (throws if absent).
  std::size_t probe(const std::string& name) const;

  /// Sampled value of probe \p p at step \p i.
  double value(std::size_t p, std::size_t i) const { return data_[p][i]; }

  /// Linear interpolation of probe \p p at time \p t (clamped to the range).
  double at(std::size_t p, double t) const;

  /// Final sampled value of probe \p p.
  double final_value(std::size_t p) const;

  double min_value(std::size_t p) const;
  double max_value(std::size_t p) const;

  /// Write the waveforms as CSV (`time_s,<probe>,<probe>,...`) for external
  /// plotting.
  void write_csv(std::ostream& os) const;

 private:
  std::vector<std::string> names_;
  std::vector<std::size_t> nodes_;
  std::vector<double> times_;
  std::vector<std::vector<double>> data_;  ///< [probe][sample].
};

/// Transient analysis options.
struct TransientOptions {
  double t_end = 0.0;           ///< Simulation end time [s] (required, > 0).
  double dt_initial = 1e-15;    ///< First step [s].
  double dt_min = 1e-20;        ///< Below this a non-converging run aborts.
  double dt_max = 1e-12;        ///< Step-size ceiling [s].
  double grow_factor = 1.4;     ///< Step growth after an easy accept.
  double shrink_factor = 0.25;  ///< Step shrink on Newton failure.
  int max_newton = 60;          ///< Newton iterations per step.
  double v_tol = 1e-7;          ///< Newton convergence threshold [V].
  double damping_vmax = 0.4;    ///< Newton damping clamp [V].
  Integrator method = Integrator::kBackwardEuler;
  /// Retry ladder: when the step size underflows dt_min, the run restarts
  /// the failing step this many times with progressively more conservative
  /// Newton settings (double max_newton, halve damping_vmax, re-enter with
  /// a smaller fresh dt) before throwing NumericalError. The escalation is
  /// deterministic — no randomness, no wall-clock — so retried runs stay
  /// reproducible. 0 disables the ladder.
  int max_restarts = 2;
};

/// Run a transient from the operating point \p x0 (from solve_dc).
/// Devices' internal state is initialized from \p x0, advanced, and left at
/// the final time (re-run requires re-solving DC first).
/// \param probe_nodes node names to record; empty records every node.
Waveform run_transient(const Circuit& circuit, const std::vector<double>& x0,
                       const TransientOptions& options,
                       const std::vector<std::string>& probe_nodes = {});

/// Compiled hot-path overload: same algorithm and bit-identical waveforms,
/// but stamps through the devirtualized plan and keeps all solver scratch in
/// the caller-owned \p ws so repeated runs allocate only the waveform. The
/// compiled circuit's reactive state is initialized from \p x0 and left at
/// the final time, mirroring the reference path's device-state contract.
Waveform run_transient(CompiledCircuit& circuit, SolveWorkspace& ws,
                       const std::vector<double>& x0,
                       const TransientOptions& options,
                       const std::vector<std::string>& probe_nodes = {});

}  // namespace finser::spice
