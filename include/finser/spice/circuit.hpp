#pragma once
/// \file circuit.hpp
/// \brief Netlist container and the device interface.
///
/// A Circuit owns named nodes and polymorphic devices. Unknown ordering in
/// the MNA system is: node voltages (0 .. node_count-1, ground eliminated)
/// followed by voltage-source branch currents. Devices are stamped through a
/// uniform interface; stateful devices (capacitors) update their history
/// only at commit(), so a rejected time step never corrupts state.

#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "finser/spice/mna.hpp"

namespace finser::spice {

/// Numerical integration scheme for reactive companion models.
enum class Integrator { kBackwardEuler, kTrapezoidal };

/// Per-stamp evaluation context handed to every device.
struct StampContext {
  const std::vector<double>* x = nullptr;  ///< Current Newton iterate.
  bool transient = false;                  ///< False during DC analysis.
  double time = 0.0;                       ///< End time of the current step [s].
  double dt = 0.0;                         ///< Step size [s] (0 in DC).
  Integrator method = Integrator::kBackwardEuler;
  std::size_t branch_offset = 0;           ///< First branch unknown index.

  /// Voltage of \p node under the current iterate (0 V for ground).
  double v(std::size_t node) const {
    return node == kGround ? 0.0 : (*x)[node];
  }

  /// Global unknown index of branch \p branch_id.
  std::size_t branch_index(std::size_t branch_id) const {
    return branch_offset + branch_id;
  }
};

/// Abstract circuit element.
class Device {
 public:
  virtual ~Device() = default;

  /// Contribute the linearized companion model at the context's iterate.
  virtual void stamp(Mna& mna, const StampContext& ctx) const = 0;

  /// Called once after the DC operating point, before transient stepping.
  virtual void initialize_state(const std::vector<double>& /*x*/) {}

  /// Called after a time step is accepted.
  virtual void commit(const StampContext& /*ctx*/) {}

  /// Append hard time points (source edges) within [0, t_end].
  virtual void add_breakpoints(double /*t_end*/, std::vector<double>& /*out*/) const {}

  /// Diagnostic type name.
  virtual const char* kind() const = 0;
};

/// Netlist: node namespace + device list.
class Circuit {
 public:
  /// Get or create a node by name. "0" and "gnd" map to the ground sentinel.
  std::size_t node(const std::string& name);

  /// Look up an existing node (throws InvalidArgument if absent).
  std::size_t find_node(const std::string& name) const;

  /// Name of node \p idx ("gnd" for the ground sentinel).
  const std::string& node_name(std::size_t idx) const;

  /// Number of non-ground nodes.
  std::size_t node_count() const { return names_.size(); }

  /// Allocate a voltage-source branch unknown; returns the branch id.
  std::size_t alloc_branch() { return branch_count_++; }

  std::size_t branch_count() const { return branch_count_; }

  /// Total unknown count: nodes + branches.
  std::size_t unknown_count() const { return node_count() + branch_count_; }

  /// Construct a device in place and keep ownership; returns a reference
  /// that stays valid for the circuit's lifetime.
  template <typename T, typename... Args>
  T& add(Args&&... args) {
    auto dev = std::make_unique<T>(std::forward<Args>(args)...);
    T& ref = *dev;
    devices_.push_back(std::move(dev));
    return ref;
  }

  const std::vector<std::unique_ptr<Device>>& devices() const { return devices_; }

 private:
  std::unordered_map<std::string, std::size_t> node_index_;
  std::vector<std::string> names_;
  std::size_t branch_count_ = 0;
  std::vector<std::unique_ptr<Device>> devices_;
};

}  // namespace finser::spice
