#pragma once
/// \file vecmath.hpp
/// \brief Deterministic, lane-vectorizable exp/log1p kernels (finser::spice).
///
/// The FinFET model evaluation (finfet.hpp, detail::ekv_f) is the arithmetic
/// that dominates every Newton iteration of the characterization hot path —
/// two exponentials and one log1p per F(u) evaluation, a dozen evaluations
/// per iteration. The lane-batched engine (engine_detail.hpp) advances W
/// independent transients in lockstep, which only pays off if that
/// transcendental work vectorizes across lanes; libm's std::exp/std::log1p
/// are opaque scalar calls and do not.
///
/// fexp()/flog1p() below are the replacement: straight-line, select-based
/// (no data-dependent branches), fixed evaluation order, written against
/// IEEE-754 double semantics only. Compiled with floating-point contraction
/// disabled (the build forces -ffp-contract=off) every target — scalar
/// reference, compiled scalar, and every batch lane width — computes the
/// exact same bit pattern for the same input, on any x86-64 feature level.
/// That is the **bit-pinned contract**: the batched engine is byte-identical
/// to the scalar one because both call these very kernels, and a loop over
/// lanes auto-vectorizes them without changing per-lane results (elementwise
/// IEEE ops are bitwise identical scalar or SIMD; there is nothing to
/// reassociate).
///
/// Accuracy is a few ulp against libm (pinned by the reference-check test in
/// tests/test_spice_compiled.cpp); the golden figures carry a 2% libm
/// headroom precisely so an alternative correctly-rounded-ish libm passes.
///
/// Domain notes (all that ekv_f needs):
///   * fexp: full double range; overflow → +inf, deep underflow → 0,
///     NaN → NaN. Subnormal results keep only ~1 rounding step of the
///     gradual-underflow tail (two-step scaling) — deterministic, and far
///     below any physical current in the model.
///   * flog1p: x >= 0 (plus +inf → +inf, NaN → NaN). Negative inputs are
///     outside the contract.

#include <bit>
#include <cstdint>
#include <limits>

namespace finser::spice::detail {

/// Deterministic exp(x) (see file comment). Cody–Waite argument reduction
/// x = k·ln2 + r with round-to-nearest k, degree-13 Taylor core on
/// |r| <= ln2/2, and exact two-step 2^k bit scaling.
inline double fexp(double x) {
  constexpr double kLog2E = 1.44269504088896338700e+00;
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  // 1.5·2^52: adding it rounds x·log2(e) to the nearest integer in the
  // low mantissa bits (round-to-nearest-even, the IEEE default mode).
  constexpr double kShift = 6755399441055744.0;
  constexpr double kOverflow = 709.782712893383973096;
  constexpr double kUnderflow = -745.2;
  constexpr double kInf = std::numeric_limits<double>::infinity();

  const double t = x * kLog2E + kShift;
  const double kd = t - kShift;
  // Branchless NaN/range guard before the int conversion (converting an
  // out-of-range double is UB): a clamped garbage k only feeds lanes whose
  // result the final selects overwrite anyway.
  const double kd_c = kd > 2100.0 ? 2100.0 : (kd < -2100.0 ? -2100.0 : kd);
  const double kd_s = kd_c == kd_c ? kd_c : 0.0;
  const auto ki = static_cast<std::int32_t>(kd_s);

  const double r_hi = x - kd_s * kLn2Hi;
  const double r = r_hi - kd_s * kLn2Lo;

  // exp(r), |r| <= 0.3466: Taylor to r^13 (remainder < 1 ulp), full Horner.
  double p = 1.60590438368216133e-10;  // 1/13!
  p = p * r + 2.08767569878680989e-09;  // 1/12!
  p = p * r + 2.50521083854417188e-08;  // 1/11!
  p = p * r + 2.75573192239858883e-07;  // 1/10!
  p = p * r + 2.75573192239858925e-06;  // 1/9!
  p = p * r + 2.48015873015873016e-05;  // 1/8!
  p = p * r + 1.98412698412698413e-04;  // 1/7!
  p = p * r + 1.38888888888888894e-03;  // 1/6!
  p = p * r + 8.33333333333333322e-03;  // 1/5!
  p = p * r + 4.16666666666666644e-02;  // 1/4!
  p = p * r + 1.66666666666666657e-01;  // 1/3!
  p = p * r + 5.00000000000000000e-01;  // 1/2!
  p = p * r + 1.0;
  p = p * r + 1.0;

  // 2^ki via exponent-field construction, split in two so the subnormal /
  // near-overflow halves stay individually representable.
  const std::int32_t k1 = ki / 2;
  const std::int32_t k2 = ki - k1;
  const double s1 = std::bit_cast<double>(
      static_cast<std::uint64_t>(static_cast<std::int64_t>(1023 + k1)) << 52);
  const double s2 = std::bit_cast<double>(
      static_cast<std::uint64_t>(static_cast<std::int64_t>(1023 + k2)) << 52);
  double result = p * s1 * s2;

  result = x > kOverflow ? kInf : result;
  result = x < kUnderflow ? 0.0 : result;
  result = x != x ? x : result;  // NaN propagates.
  return result;
}

/// Deterministic log(u) for normal positive u (internal core of flog1p):
/// mantissa/exponent split to m ∈ [√½, √2), atanh series in s = (m−1)/(m+1).
inline double flog_normal(double u) {
  constexpr double kLn2Hi = 6.93147180369123816490e-01;
  constexpr double kLn2Lo = 1.90821492927058770002e-10;
  constexpr double kSqrt2 = 1.41421356237309514547;

  const auto bits = std::bit_cast<std::uint64_t>(u);
  const auto e_raw = static_cast<std::int64_t>((bits >> 52) & 0x7FF) - 1023;
  double m = std::bit_cast<double>((bits & 0x000FFFFFFFFFFFFFull) |
                                   0x3FF0000000000000ull);  // [1, 2)
  double e = static_cast<double>(e_raw);
  const bool fold = m > kSqrt2;
  m = fold ? 0.5 * m : m;
  e = fold ? e + 1.0 : e;

  const double s = (m - 1.0) / (m + 1.0);  // |s| <= 0.1716
  const double z = s * s;
  // log(m) = 2s·(1 + z/3 + z²/5 + … ), Taylor through s^21 (< 1 ulp rel).
  double q = 4.76190476190476164e-02;  // 1/21
  q = q * z + 5.26315789473684181e-02;  // 1/19
  q = q * z + 5.88235294117647051e-02;  // 1/17
  q = q * z + 6.66666666666666657e-02;  // 1/15
  q = q * z + 7.69230769230769273e-02;  // 1/13
  q = q * z + 9.09090909090909116e-02;  // 1/11
  q = q * z + 1.11111111111111105e-01;  // 1/9
  q = q * z + 1.42857142857142849e-01;  // 1/7
  q = q * z + 2.00000000000000011e-01;  // 1/5
  q = q * z + 3.33333333333333315e-01;  // 1/3
  const double lg_m = 2.0 * s + 2.0 * s * z * q;
  return e * kLn2Hi + (lg_m + e * kLn2Lo);
}

/// Deterministic log1p(x) for x >= 0 (see file comment). Uses the classic
/// exact correction log1p(x) = log(u)·x/(u−1) with u = 1+x, which repairs
/// the low bits the 1+x rounding discarded; tiny x short-circuits to x.
inline double flog1p(double x) {
  constexpr double kInf = std::numeric_limits<double>::infinity();
  const double u = 1.0 + x;
  const double d = u - 1.0;
  // The division is unconditional on a select-protected denominator (nudged
  // to 1.0 when d == 0, in which case corr is discarded by the select below)
  // so no statement is guarded by a branch: a `d == 0 ? 1.0 : x / d` ternary
  // keeps a real branch around the possibly-trapping division, which blocks
  // if-conversion — and with it lane vectorization — of every loop this
  // inlines into. The additive form (rather than selecting the denominator
  // directly) stops the compiler from folding the x/1.0 arm away and
  // re-hoisting the select around the division; d + 0.0 == d bit for bit for
  // every nonzero d, so the d != 0 path is untouched.
  const double dsafe = d + (d == 0.0 ? 1.0 : 0.0);
  const double corr = x / dsafe;
  // Evaluated unconditionally for the same reason (a ternary arm is a
  // branch): when d == 0, u is exactly 1.0, flog_normal(1.0) is a safe 0.0,
  // and the select discards it.
  const double lg = flog_normal(u);
  double result = d == 0.0 ? x : lg * corr;
  result = x == kInf ? kInf : result;
  result = x != x ? x : result;  // NaN propagates.
  return result;
}

}  // namespace finser::spice::detail
