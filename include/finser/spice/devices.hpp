#pragma once
/// \file devices.hpp
/// \brief Concrete circuit elements: R, C, V-source, pulsed I-source, FinFET.

#include <cstddef>
#include <vector>

#include "finser/spice/circuit.hpp"
#include "finser/spice/finfet.hpp"

namespace finser::spice {

/// Linear resistor between nodes a and b.
class Resistor : public Device {
 public:
  Resistor(std::size_t a, std::size_t b, double ohms);
  void stamp(Mna& mna, const StampContext& ctx) const override;
  const char* kind() const override { return "resistor"; }

  std::size_t node_a() const { return a_; }
  std::size_t node_b() const { return b_; }
  double conductance() const { return g_; }

 private:
  std::size_t a_, b_;
  double g_;
};

/// Linear capacitor between nodes a and b (open in DC).
class Capacitor : public Device {
 public:
  Capacitor(std::size_t a, std::size_t b, double farads);
  void stamp(Mna& mna, const StampContext& ctx) const override;
  void initialize_state(const std::vector<double>& x) override;
  void commit(const StampContext& ctx) override;
  const char* kind() const override { return "capacitor"; }

  double capacitance() const { return c_; }
  std::size_t node_a() const { return a_; }
  std::size_t node_b() const { return b_; }

 private:
  double companion_geq(const StampContext& ctx) const;
  double companion_ieq(const StampContext& ctx) const;

  std::size_t a_, b_;
  double c_;
  double v_prev_ = 0.0;  ///< Accepted branch voltage of the previous step.
  double i_prev_ = 0.0;  ///< Accepted branch current (trapezoidal history).
};

/// Ideal independent voltage source from + node \p a to − node \p b.
/// Constant value; the branch current is an MNA unknown.
class VSource : public Device {
 public:
  /// \param circuit used to allocate the branch unknown.
  VSource(Circuit& circuit, std::size_t a, std::size_t b, double volts);
  void stamp(Mna& mna, const StampContext& ctx) const override;
  const char* kind() const override { return "vsource"; }

  void set_voltage(double volts) { v_ = volts; }
  double voltage() const { return v_; }

  /// Branch current unknown of this source in solution vectors.
  std::size_t branch_id() const { return branch_; }

  std::size_t node_a() const { return a_; }
  std::size_t node_b() const { return b_; }

 private:
  std::size_t a_, b_;
  std::size_t branch_;
  double v_;
};

/// Ideal voltage source with a piecewise-linear waveform (SPICE "PWL").
/// The value is clamped to the first/last point outside the time range;
/// the DC operating point uses the t = 0 value. Used for wordline/bitline
/// pulses in access-scenario strike simulations.
class PwlVSource : public Device {
 public:
  /// \param points (time [s], value [V]) pairs, strictly increasing in time.
  PwlVSource(Circuit& circuit, std::size_t a, std::size_t b,
             std::vector<std::pair<double, double>> points);
  void stamp(Mna& mna, const StampContext& ctx) const override;
  void add_breakpoints(double t_end, std::vector<double>& out) const override;
  const char* kind() const override { return "pwl-vsource"; }

  /// Waveform value at time \p t.
  double value(double t) const;

  /// Time of the last table point; value(t) is constant for t beyond it.
  double last_point_time() const { return points_.back().first; }

  std::size_t branch_id() const { return branch_; }
  std::size_t node_a() const { return a_; }
  std::size_t node_b() const { return b_; }

 private:
  std::size_t a_, b_;
  std::size_t branch_;
  std::vector<std::pair<double, double>> points_;
};

/// Time-shape of a radiation current pulse.
struct PulseShape {
  enum class Kind { kRectangular, kTriangular };

  Kind kind = Kind::kRectangular;
  double delay_s = 0.0;      ///< Pulse start time.
  double width_s = 0.0;      ///< Total pulse duration.
  double amplitude_a = 0.0;  ///< Plateau (rect) or peak (triangle) current.

  /// Instantaneous current at time \p t.
  double value(double t) const;

  /// Total charge delivered [C].
  double charge_c() const;

  /// Time past which value(t) is identically zero (trailing edge plus the
  /// same edge tolerance value() applies).
  double end_time() const;

  /// Rectangular pulse delivering \p charge_c over \p width_s.
  static PulseShape rectangular_for_charge(double charge_c, double width_s,
                                           double delay_s = 0.0);

  /// Triangular pulse delivering \p charge_c over \p width_s.
  static PulseShape triangular_for_charge(double charge_c, double width_s,
                                          double delay_s = 0.0);
};

/// Independent current source pushing current from node \p from to node
/// \p to (i.e. out of `from`, into `to`). Zero in DC analysis.
class PulseISource : public Device {
 public:
  PulseISource(std::size_t from, std::size_t to, const PulseShape& shape);
  void stamp(Mna& mna, const StampContext& ctx) const override;
  void add_breakpoints(double t_end, std::vector<double>& out) const override;
  const char* kind() const override { return "isource"; }

  void set_shape(const PulseShape& shape) { shape_ = shape; }
  const PulseShape& shape() const { return shape_; }

  std::size_t node_from() const { return from_; }
  std::size_t node_to() const { return to_; }

 private:
  std::size_t from_, to_;
  PulseShape shape_;
};

/// FinFET transistor (drain, gate, source; SOI — no body terminal).
/// Device capacitances are added explicitly by netlist builders.
class Mosfet : public Device {
 public:
  /// \param model must outlive the device.
  Mosfet(std::size_t d, std::size_t g, std::size_t s, const FinFetModel& model,
         double nfin = 1.0);
  void stamp(Mna& mna, const StampContext& ctx) const override;
  const char* kind() const override { return "finfet"; }

  /// Per-instance threshold shift for process-variation sampling [V].
  void set_delta_vt(double dvt) { delta_vt_ = dvt; }
  double delta_vt() const { return delta_vt_; }

  /// Junction temperature [K] (default 300 K).
  void set_temperature(double temp_k) { temp_k_ = temp_k; }
  double temperature() const { return temp_k_; }

  /// Operating point at the given solution vector (diagnostics/tests).
  MosOp op_at(const std::vector<double>& x) const;

  const FinFetModel& model() const { return *model_; }
  double nfin() const { return nfin_; }
  std::size_t drain() const { return d_; }
  std::size_t gate() const { return g_; }
  std::size_t source() const { return s_; }

 private:
  std::size_t d_, g_, s_;
  const FinFetModel* model_;
  double nfin_;
  double delta_vt_ = 0.0;
  double temp_k_ = 300.0;
};

}  // namespace finser::spice
