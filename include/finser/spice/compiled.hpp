#pragma once
/// \file compiled.hpp
/// \brief Compile-once/evaluate-many lowering of a Circuit.
///
/// Characterization solves millions of tiny transients on a handful of
/// fixed topologies: the netlist never changes between samples, only a few
/// parameters do (per-transistor ΔVt, strike pulse shapes, source
/// voltages). CompiledCircuit lowers a Circuit into that shape once:
///
///   * **Devirtualized stamp plan** — one flat array of tagged device
///     records, walked with a switch instead of virtual Device::stamp()
///     calls, in the *original netlist order* so the floating-point
///     accumulation into each MNA entry is byte-identical to the
///     polymorphic reference path (both share the kernels in
///     src/spice/stamp_kernels.hpp).
///   * **Per-kind SoA parameter arrays** — precomputed unknown indices and
///     parameters, contiguous per device kind; reactive state (capacitor
///     histories) lives here too, so evaluating a compiled circuit never
///     touches the polymorphic devices.
///   * **rebind()** — refreshes every *mutable* parameter (Mosfet ΔVt and
///     temperature, VSource voltage, PulseISource shape) from the source
///     circuit without reallocating devices, nodes or plans. A Vt-variation
///     MC sample or an injected-charge step is a rebind, not a rebuild.
///
/// Together with SolveWorkspace (preallocated Mna + Newton scratch + pivot
/// cache) the compiled entry points of solve_dc()/run_transient() run the
/// characterization hot path without per-sample allocation. The polymorphic
/// path remains the reference implementation; equivalence is pinned
/// bit-exact by tests/test_spice_compiled.cpp. Lifecycle details and the
/// when-to-recompile table: docs/spice.md.

#include <array>
#include <cstdint>
#include <optional>
#include <vector>

#include "finser/spice/circuit.hpp"
#include "finser/spice/devices.hpp"
#include "finser/spice/finfet.hpp"
#include "finser/spice/mna.hpp"

namespace finser::spice {

struct BatchWorkspace;

/// Devirtualized, rebindable lowering of one Circuit (see file comment).
/// The source Circuit must outlive the compiled form and must not gain
/// nodes, branches or devices afterwards — parameter *values* may change
/// freely through the device setters followed by rebind().
class CompiledCircuit {
 public:
  explicit CompiledCircuit(const Circuit& circuit);

  /// Refresh every mutable device parameter from the source circuit.
  void rebind();

  const Circuit& source() const { return *src_; }
  std::size_t node_count() const { return node_count_; }
  std::size_t unknown_count() const { return unknown_count_; }
  std::size_t device_count() const { return ops_.size(); }

  // --- Engine hooks (mirror the Device interface, devirtualized) ----------

  /// Contribute every device's linearized companion model at ctx's iterate.
  void stamp_all(Mna& mna, const StampContext& ctx) const;

  /// Fused-path stamp: identical contributions in identical order to
  /// stamp_all(), written through precomputed flat slot indices into raw
  /// dense arrays instead of Mna::add() calls. \p a must have
  /// unknown_count()² + 1 zeroed entries and \p b unknown_count() + 1 —
  /// the final entry of each is a scratch slot absorbing ground stamps
  /// (branch-free equivalent of Mna's kGround drop). Used by the engine's
  /// compiled Newton kernel (engine_detail.hpp); bit-identity with
  /// stamp_all() is pinned by tests/test_spice_compiled.cpp.
  void stamp_fused(double* a, double* b, const StampContext& ctx) const;

  /// Reset reactive state from the DC operating point \p x.
  void initialize_state(const std::vector<double>& x);

  /// Advance reactive state after an accepted time step.
  void commit(const StampContext& ctx);

  /// Append hard time points (source edges) within [0, t_end].
  void add_breakpoints(double t_end, std::vector<double>& out) const;

  /// True when every time-dependent source (PWL tables, strike pulses) has
  /// reached its final constant value by time \p t — i.e. stamping at any
  /// time >= \p t is a pure function of the iterate and the reactive state.
  /// This is the license for the transient engine's steady-state
  /// fast-forward (see engine_detail.hpp).
  bool sources_constant_after(double t) const;

  /// Snapshot / restore the reactive state (capacitor histories), used by
  /// the steady-state fast-forward to replay a proven cycle.
  void save_reactive_state(std::vector<double>& out) const;
  void load_reactive_state(const std::vector<double>& in);

  // --- Lane-batched engine hooks (batch.hpp; see docs/spice.md) -----------
  // The batched transient engine (engine_detail.hpp) advances W independent
  // parameter bindings of *this one compiled plan* in lockstep. Per-lane
  // parameters and state live in the caller's BatchWorkspace as AoSoA
  // blocks; the hooks below mirror the scalar hooks above one lane at a
  // time (scalar bookkeeping) or all lanes at once (the hot stamp).

  /// Size \p bw for \p lanes lanes of this circuit and seed every lane from
  /// the current scalar binding. Invalidates the per-lane pivot caches.
  void batch_configure(BatchWorkspace& bw, std::size_t lanes) const;

  /// Load lane \p lane of \p bw from the current scalar binding — i.e. from
  /// the values the last rebind() captured. The per-sample sequence is:
  /// device setters → rebind() → batch_rebind_lane(bw, lane).
  void batch_rebind_lane(BatchWorkspace& bw, std::size_t lane) const;

  /// Fused transient stamp of every lane at once: per lane w this computes
  /// byte-identically what stamp_fused() computes at time[w] / dt[w] from
  /// bw.x_try's lane-w iterate, accumulating into bw.fa / bw.fb (which must
  /// be zeroed). Every lane is stamped unconditionally — masked lanes are
  /// compute-and-discard riders, which is what keeps the loop vector-shaped.
  template <std::size_t W>
  void batch_stamp_fused(BatchWorkspace& bw, const double* time,
                         const double* dt, Integrator method) const;

  /// Per-lane mirrors of the scalar state hooks above.
  void batch_initialize_state(BatchWorkspace& bw, std::size_t lane,
                              const std::vector<double>& x) const;
  void batch_commit(BatchWorkspace& bw, std::size_t lane, double time,
                    double dt, Integrator method) const;
  void batch_add_breakpoints(const BatchWorkspace& bw, std::size_t lane,
                             double t_end, std::vector<double>& out) const;
  bool batch_sources_constant_after(const BatchWorkspace& bw,
                                    std::size_t lane, double t) const;
  void batch_save_reactive_state(const BatchWorkspace& bw, std::size_t lane,
                                 std::vector<double>& out) const;
  void batch_load_reactive_state(BatchWorkspace& bw, std::size_t lane,
                                 const std::vector<double>& in) const;

 private:
  enum class Kind : std::uint8_t {
    kResistor,
    kCapacitor,
    kVSource,
    kPwlVSource,
    kPulseISource,
    kMosfet,
  };

  /// One stamp-plan step: device kind + index into that kind's SoA array.
  struct Op {
    Kind kind;
    std::uint32_t idx;
  };

  /// Flat index into the fused stamp arrays (see stamp_fused): matrix slots
  /// are i·n + j, rhs slots are i, and ground-touching stamps are redirected
  /// to the trailing scratch slot (n² resp. n) at compile time.
  using Slot = std::uint32_t;

  struct ResistorRec {
    std::size_t a, b;
    double g;
    Slot s_aa, s_bb, s_ab, s_ba;
  };
  struct CapacitorRec {
    std::size_t a, b;
    double c;
    double v_prev = 0.0;
    double i_prev = 0.0;
    Slot s_aa, s_bb, s_ab, s_ba, r_a, r_b;
  };
  struct VSourceRec {
    const VSource* src;
    std::size_t a, b, branch;
    double v;
    Slot s_ak, s_bk, s_ka, s_kb, r_k;
  };
  struct PwlRec {
    // The waveform table is immutable, so it is read through the source
    // device instead of being copied into the plan.
    const PwlVSource* src;
    std::size_t a, b, branch;
    Slot s_ak, s_bk, s_ka, s_kb, r_k;
  };
  struct ISourceRec {
    const PulseISource* src;
    std::size_t from, to;
    PulseShape shape;
    Slot r_from, r_to;
  };
  struct MosRec {
    const Mosfet* src;
    std::size_t d, g, s;
    const FinFetModel* model;
    double nfin;
    double delta_vt;
    double temp_k;
    FinFetPlan plan;  ///< Baked at compile/rebind (see finfet.hpp).
    Slot s_dd, s_dg, s_ds, s_sd, s_sg, s_ss, r_d, r_s;
  };

  const Circuit* src_;
  std::size_t node_count_;
  std::size_t unknown_count_;
  std::vector<Op> ops_;  ///< Original netlist order.
  std::vector<ResistorRec> resistors_;
  std::vector<CapacitorRec> capacitors_;
  std::vector<VSourceRec> vsources_;
  std::vector<PwlRec> pwls_;
  std::vector<ISourceRec> isources_;
  std::vector<MosRec> mosfets_;
};

/// Preallocated scratch of the compiled solve paths: the MNA system, the
/// pivot-order cache and every Newton/transient work vector. One workspace
/// per (thread, compiled circuit); reusing it across solves is what removes
/// the per-sample allocations of the reference path. A workspace adapts
/// automatically when handed a system of a different size (and drops the
/// pivot cache, which is topology-specific).
struct SolveWorkspace {
  Mna::PivotCache pivot;
  std::vector<double> x_new;     ///< Newton candidate iterate.
  std::vector<double> x_try;     ///< Transient trial state.
  std::vector<double> x_good;    ///< DC: last converged iterate.
  std::vector<double> anchor;    ///< DC: gmin anchor (initial guess copy).
  std::vector<double> gmin_schedule;  ///< DC: extensible continuation schedule.
  std::vector<double> breaks;    ///< Transient: hard breakpoint times.

  /// Snapshot of one accepted uniform transient step: the solution vector
  /// plus the reactive (capacitor) state. The transient engine keeps a short
  /// ring of these to detect exact steady-state cycles (see
  /// engine_detail.hpp run_transient_impl).
  struct StateSnap {
    std::vector<double> x;
    std::vector<double> state;
  };
  std::array<StateSnap, 8> ff_ring;

  // --- Fused solve-kernel scratch (compiled path only) ---------------------
  // Raw dense system written by CompiledCircuit::stamp_fused(): fa holds the
  // n×n matrix row-major plus one trailing ground-scratch slot, fb the rhs
  // plus one, fperm the pivot permutation of the in-place factorization.
  std::vector<double> fa;
  std::vector<double> fb;
  std::vector<std::size_t> fperm;

  /// Size the fused-kernel scratch for \p n unknowns (idempotent).
  void fused_for(std::size_t n) {
    fa.resize(n * n + 1);
    fb.resize(n + 1);
    fperm.resize(n);
  }

  /// The workspace MNA system, (re)constructed to \p n unknowns on demand.
  Mna& mna_for(std::size_t n) {
    if (!mna_ || mna_->size() != n) {
      mna_.emplace(n);
      pivot.invalidate();
    }
    return *mna_;
  }

 private:
  std::optional<Mna> mna_;
};

}  // namespace finser::spice
