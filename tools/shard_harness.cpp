/// \file shard_harness.cpp
/// \brief End-to-end equivalence and degradation test for sharded campaign
/// execution (docs/sharding.md). Registered as ctest ShardCampaignEquivalence.
///
/// The driver receives the finser_cli path on argv[1] and runs one tiny
/// two-scenario campaign through six legs, each in a fresh output dir:
///
///   1. reference      — in-process `campaign` run (no --workers).
///   2. --workers 1/2/4 — sharded runs; every CSV must be byte-identical to
///      the reference (determinism is the contract, not a best effort).
///   3. kill           — --workers 4 with FINSER_FAULT=worker_kill_after_claim:1:
///      every initial worker SIGKILLs itself right after acking its first
///      task; replacements (spawned without the fault) must finish the
///      campaign with exit 0 and identical CSVs.
///   4. stall          — FINSER_FAULT=heartbeat_stall:1 wedges both initial
///      workers; with --stage-timeout-s the wall-clock watchdog (not the
///      heartbeat timeout, pushed out of reach) must reclaim and finish.
///   5. quarantine     — FINSER_SHARD_POISON=sweep-b makes scenario b's sweep
///      die on every attempt: exit code 5 (partial), scenario a identical to
///      the reference, and the run report must carry the quarantined stage.
///
/// CSVs, not metrics, are compared: scheduling counters ("shard.reassigns",
/// the heartbeat histogram) legitimately differ between runs.

#include <sys/types.h>
#include <sys/wait.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "finser/util/io.hpp"

namespace {

using namespace finser;

/// The five files a completed run of the harness campaign writes.
const char* kCsvFiles[] = {
    "a/pof_alpha.csv", "a/fit_summary.csv", "b/pof_alpha.csv",
    "b/fit_summary.csv", "eh_pairs_alpha.csv",
};

/// Tiny but end-to-end campaign: shared cell model, two sweep stages.
/// \p strikes and \p extra_defaults parameterize the adaptive-stopping leg
/// (more strikes so the chunked stopping schedule has real decision points,
/// plus a `sampling` defaults block).
void write_campaign(const std::string& path, const std::string& outdir,
                    std::size_t strikes = 600,
                    const std::string& extra_defaults = "") {
  const std::string doc = std::string("{\n")
      + "  \"campaign\": \"shard-harness\",\n"
      + "  \"seed\": 5,\n"
      + "  \"output_dir\": \"" + outdir + "\",\n"
      + "  \"defaults\": {\n"
      + "    \"rows\": 2, \"cols\": 2, \"vdds\": [0.8], \"pv_samples\": 10,\n"
      + "    \"strikes\": " + std::to_string(strikes) + ",\n"
      + "    \"histories\": 600, \"species\": [\"alpha\"]" + extra_defaults + "\n"
      + "  },\n"
      + "  \"scenarios\": [\n"
      + "    {\"name\": \"a\"},\n"
      + "    {\"name\": \"b\", \"pattern\": \"zeros\"}\n"
      + "  ]\n"
      + "}\n";
  std::string error;
  if (!util::atomic_write_file(path, doc.data(), doc.size(), &error)) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(), error.c_str());
    std::exit(1);
  }
}

/// Fork + execv finser_cli; returns the child's exit code (or -signal).
int run_cli(const std::string& cli, const std::vector<std::string>& args,
            const char* fault, const char* poison) {
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    if (fault != nullptr) setenv("FINSER_FAULT", fault, 1);
    else unsetenv("FINSER_FAULT");
    if (poison != nullptr) setenv("FINSER_SHARD_POISON", poison, 1);
    else unsetenv("FINSER_SHARD_POISON");
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(cli.c_str()));
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    execv(cli.c_str(), argv.data());
    std::perror("execv");
    _exit(127);
  }
  int status = 0;
  if (waitpid(pid, &status, 0) < 0) {
    std::perror("waitpid");
    std::exit(1);
  }
  if (WIFEXITED(status)) return WEXITSTATUS(status);
  if (WIFSIGNALED(status)) return -WTERMSIG(status);
  return -999;
}

bool files_identical(const std::string& a, const std::string& b) {
  std::vector<std::uint8_t> da;
  std::vector<std::uint8_t> db;
  return util::read_file(a, da, nullptr) && util::read_file(b, db, nullptr) &&
         da == db;
}

bool file_contains(const std::string& path, const std::string& needle) {
  std::vector<std::uint8_t> raw;
  if (!util::read_file(path, raw, nullptr)) return false;
  const std::string text(raw.begin(), raw.end());
  return text.find(needle) != std::string::npos;
}

int fail(const std::string& msg) {
  std::fprintf(stderr, "shard harness FAILED: %s\n", msg.c_str());
  return 1;
}

/// Compare every campaign CSV under \p out against the reference outputs.
bool outputs_match_reference(const std::string& out, const std::string& ref,
                             std::string* why) {
  for (const char* rel : kCsvFiles) {
    if (!files_identical(out + "/" + rel, ref + "/" + rel)) {
      *why = std::string(rel) + " differs from reference (or is missing)";
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc != 2) {
    std::fprintf(stderr, "usage: shard_harness <finser_cli>\n");
    return 2;
  }
  const std::string cli = argv[1];

  // The harness owns its determinism: scrub env knobs children would read.
  unsetenv("FINSER_MC_SCALE");
  unsetenv("FINSER_THREADS");
  unsetenv("FINSER_WORKERS");
  unsetenv("FINSER_FAULT");
  unsetenv("FINSER_SHARD_POISON");
  unsetenv("FINSER_CLUSTER");

  char root_template[] = "/tmp/finser_shard_XXXXXX";
  const char* root_c = mkdtemp(root_template);
  if (root_c == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::string root = root_c;
  std::string why;

  // 1. In-process reference.
  const std::string ref_out = root + "/out_ref";
  write_campaign(root + "/ref.json", ref_out);
  if (run_cli(cli, {"campaign", root + "/ref.json"}, nullptr, nullptr) != 0) {
    return fail("in-process reference run failed");
  }

  // 2. Sharded runs at 1, 2 and 4 workers must be byte-identical.
  for (const int workers : {1, 2, 4}) {
    const std::string tag = std::to_string(workers);
    const std::string out = root + "/out_w" + tag;
    write_campaign(root + "/w" + tag + ".json", out);
    const int rc = run_cli(
        cli, {"campaign", root + "/w" + tag + ".json", "--workers", tag},
        nullptr, nullptr);
    if (rc != 0) {
      return fail("--workers " + tag + " exited " + std::to_string(rc));
    }
    if (!outputs_match_reference(out, ref_out, &why)) {
      return fail("--workers " + tag + ": " + why);
    }
    std::printf("shard OK: --workers %s bit-identical to in-process\n",
                tag.c_str());
  }

  // 2b. Adaptive stopping under the lease protocol: --ci-target makes every
  //     energy bin stop at a deterministic chunk-granular round boundary, and
  //     shard workers inherit the knob through the environment — so a
  //     --workers 2 run must stay byte-identical to the in-process run with
  //     the same flag. The campaign also turns on importance sampling, so the
  //     weighted estimator state crosses the lease protocol too.
  {
    const std::string sampling =
        ",\n    \"sampling\": {\"position\": \"importance\", "
        "\"ci_min_chunks\": 2}";
    constexpr std::size_t kCiStrikes = 6000;  // > 1 chunk: rounds are real.

    // Engagement witness: the same campaign without the CI knob must land on
    // different numbers (the stopper really cut the budget) — otherwise this
    // leg would pass vacuously with stopping disabled.
    const std::string full_out = root + "/out_ci_full";
    write_campaign(root + "/ci_full.json", full_out, kCiStrikes, sampling);
    if (run_cli(cli, {"campaign", root + "/ci_full.json"}, nullptr, nullptr) !=
        0) {
      return fail("full-budget importance reference run failed");
    }

    const std::string ci_ref = root + "/out_ci_ref";
    write_campaign(root + "/ci_ref.json", ci_ref, kCiStrikes, sampling);
    if (run_cli(cli,
                {"campaign", root + "/ci_ref.json", "--ci-target", "0.35"},
                nullptr, nullptr) != 0) {
      return fail("in-process --ci-target reference run failed");
    }
    if (files_identical(ci_ref + "/a/pof_alpha.csv",
                        full_out + "/a/pof_alpha.csv")) {
      return fail("--ci-target leg: adaptive stopping never engaged (outputs "
                  "match the full-budget run)");
    }

    const std::string out = root + "/out_ci_w2";
    write_campaign(root + "/ci_w2.json", out, kCiStrikes, sampling);
    const int rc = run_cli(
        cli,
        {"campaign", root + "/ci_w2.json", "--workers", "2", "--ci-target",
         "0.35"},
        nullptr, nullptr);
    if (rc != 0) {
      return fail("--workers 2 --ci-target exited " + std::to_string(rc));
    }
    if (!outputs_match_reference(out, ci_ref, &why)) {
      return fail("--workers 2 --ci-target: " + why);
    }
    std::printf(
        "shard OK: --workers 2 --ci-target bit-identical to in-process\n");
  }

  // 2c. Correlated charge collection under the lease protocol: a campaign
  //     with a `cluster: 2x2` defaults block must stay byte-identical between
  //     in-process and --workers 2 — the memoized cluster surface (and its
  //     cluster_surface artifacts) must not leak scheduling into the numbers.
  //     The metrics report is the engagement witness: the reference run must
  //     actually have performed joint multi-cell simulations, otherwise this
  //     leg passes vacuously with the cluster path never taken.
  {
    const std::string cluster =
        ",\n    \"cluster\": {\"mode\": \"2x2\", \"pv_samples\": 4}";
    const std::string cl_ref = root + "/out_cl_ref";
    const std::string report = root + "/cl_report.json";
    write_campaign(root + "/cl_ref.json", cl_ref, 600, cluster);
    if (run_cli(cli,
                {"campaign", root + "/cl_ref.json", "--metrics-out", report},
                nullptr, nullptr) != 0) {
      return fail("in-process cluster reference run failed");
    }
    if (!file_contains(report, "sram.cluster.sims")) {
      return fail("cluster leg: no joint multi-cell simulations ran "
                  "(report lacks sram.cluster.sims)");
    }

    const std::string out = root + "/out_cl_w2";
    write_campaign(root + "/cl_w2.json", out, 600, cluster);
    const int rc = run_cli(
        cli, {"campaign", root + "/cl_w2.json", "--workers", "2"}, nullptr,
        nullptr);
    if (rc != 0) {
      return fail("--workers 2 cluster leg exited " + std::to_string(rc));
    }
    if (!outputs_match_reference(out, cl_ref, &why)) {
      return fail("--workers 2 cluster leg: " + why);
    }
    std::printf("shard OK: cluster=2x2 bit-identical to in-process\n");
  }

  // 3. Every initial worker SIGKILLs itself right after its first claim;
  //    replacements must still converge to the identical result.
  {
    const std::string out = root + "/out_kill";
    write_campaign(root + "/kill.json", out);
    const int rc = run_cli(
        cli, {"campaign", root + "/kill.json", "--workers", "4"},
        "worker_kill_after_claim:1", nullptr);
    if (rc != 0) {
      return fail("worker_kill_after_claim leg exited " + std::to_string(rc));
    }
    if (!outputs_match_reference(out, ref_out, &why)) {
      return fail("worker_kill_after_claim leg: " + why);
    }
    std::printf("shard OK: bit-identical under worker_kill_after_claim\n");
  }

  // 4. Wedged workers (heartbeats stalled, stage never reports done) are
  //    reclaimed by the per-stage wall-clock watchdog, not the heartbeat
  //    timeout (pushed to 600 s so only --stage-timeout-s can fire).
  {
    const std::string out = root + "/out_stall";
    const std::string report = root + "/stall_report.json";
    write_campaign(root + "/stall.json", out);
    const int rc = run_cli(
        cli,
        {"campaign", root + "/stall.json", "--workers", "2",
         "--stage-timeout-s", "2", "--heartbeat-timeout-s", "600",
         "--metrics-out", report},
        "heartbeat_stall:1", nullptr);
    if (rc != 0) {
      return fail("stage-timeout leg exited " + std::to_string(rc));
    }
    if (!outputs_match_reference(out, ref_out, &why)) {
      return fail("stage-timeout leg: " + why);
    }
    if (!file_contains(report, "shard.stage_timeouts")) {
      return fail("stage-timeout leg: report lacks shard.stage_timeouts");
    }
    std::printf("shard OK: stage watchdog reclaimed wedged workers\n");
  }

  // 5. A stage that fails every attempt is quarantined: exit 5, the healthy
  //    scenario still completes bit-identically, the report says why.
  {
    const std::string out = root + "/out_q";
    const std::string report = root + "/q_report.json";
    write_campaign(root + "/q.json", out);
    const int rc = run_cli(
        cli,
        {"campaign", root + "/q.json", "--workers", "2", "--max-retries", "1",
         "--metrics-out", report},
        nullptr, "sweep-b");
    if (rc != 5) {
      return fail("quarantine leg: expected exit 5 (partial), got " +
                  std::to_string(rc));
    }
    for (const char* rel : {"a/pof_alpha.csv", "a/fit_summary.csv"}) {
      if (!files_identical(out + "/" + rel, ref_out + "/" + rel)) {
        return fail(std::string("quarantine leg: healthy scenario file ") +
                    rel + " differs from reference");
      }
    }
    if (std::filesystem::exists(out + "/b/pof_alpha.csv")) {
      return fail("quarantine leg: poisoned scenario b wrote outputs");
    }
    if (!file_contains(report, "\"quarantined\"") ||
        !file_contains(report, "sweep-b")) {
      return fail("quarantine leg: report does not record the quarantine");
    }
    std::printf("shard OK: quarantine degraded to partial (exit 5)\n");
  }

  std::error_code ec;
  std::filesystem::remove_all(root, ec);  // Best-effort cleanup.
  std::printf("shard harness PASSED\n");
  return 0;
}
