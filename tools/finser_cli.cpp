/// \file finser_cli.cpp
/// \brief Command-line driver of the finser cross-layer SER flow.
///
/// Usage:
///   finser_cli run <config.ini>       full flow from a config file (below)
///   finser_cli run                    ... with built-in paper defaults
///   finser_cli campaign <file.json>   multi-scenario campaign
///                                     (schema: docs/architecture.md)
///   finser_cli serve <file.json>      long-lived NDJSON POF/FIT query loop
///                                     over the campaign's response surfaces
///                                     (protocol: docs/serving.md)
///   finser_cli artifacts ls <dir>     read-only artifact-store inventory
///   finser_cli cell [vdd]             one-voltage cell summary (Qcrit, SNM)
///   finser_cli --help
///
/// The global `--threads N` flag caps the worker-thread count (default:
/// FINSER_THREADS, else hardware concurrency). Results are bit-identical
/// for any thread count (docs/parallelism.md).
///
/// Config keys (all optional; `#` comments allowed):
///   array.rows = 9            array.cols = 9
///   cell.vdds = 0.7, 0.8, 0.9, 1.0, 1.1
///   cell.sigma_vt = 0.05      # [V]
///   cell.cnode_ff = 0.17      # storage-node capacitance [fF]
///   mc.strikes = 60000        mc.pv_samples = 200
///   mc.seed = 20140601
///   mc.threads = 0            # 0 = auto; --threads overrides
///   mc.ci_target = 0          # target relative 95% CI half-width per energy
///                             # bin; 0 = fixed strike budget (--ci-target
///                             # and FINSER_CI_TARGET override)
///   species = alpha, proton, neutron
///   output.dir = finser_out
///   lut_cache = finser_out/pof_luts.bin

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <sstream>
#include <streambuf>
#include <string>
#include <vector>

#include <unistd.h>

#include "finser/ckpt/checkpoint.hpp"
#include "finser/core/ser_flow.hpp"
#include "finser/exec/cancel.hpp"
#include "finser/exec/exec.hpp"
#include "finser/exec/progress.hpp"
#include "finser/obs/obs.hpp"
#include "finser/obs/report.hpp"
#include "finser/pipeline/artifact_store.hpp"
#include "finser/pipeline/campaign.hpp"
#include "finser/pipeline/surface_provider.hpp"
#include "finser/shard/supervisor.hpp"
#include "finser/surface/serve.hpp"
#include "finser/shard/worker.hpp"
#include "finser/spice/batch.hpp"
#include "finser/sram/snm.hpp"
#include "finser/util/config.hpp"
#include "finser/util/csv.hpp"
#include "finser/util/error.hpp"

namespace {

using namespace finser;

void print_help() {
  std::printf(
      "finser_cli — cross-layer SOI FinFET SRAM soft-error analysis\n\n"
      "  finser_cli run [config.ini]       full characterization + sweeps\n"
      "  finser_cli campaign <file.json>   multi-scenario campaign; shared\n"
      "                                    characterization and artifact cache\n"
      "                                    (schema: docs/architecture.md)\n"
      "  finser_cli serve <file.json>      long-lived query loop: NDJSON\n"
      "                                    POF/FIT requests on stdin, one\n"
      "                                    JSON reply per line on stdout;\n"
      "                                    cache hits answer without\n"
      "                                    simulation, misses refine through\n"
      "                                    the campaign runner\n"
      "                                    (protocol: docs/serving.md)\n"
      "  finser_cli artifacts ls <dir>     read-only inventory of an artifact\n"
      "                                    store: kind, fingerprint, size and\n"
      "                                    integrity status per entry\n"
      "  finser_cli cell [vdd]             single-voltage cell summary\n"
      "  finser_cli worker <file.json>     shard worker (spawned by a\n"
      "                                    `campaign --workers N` supervisor;\n"
      "                                    not for direct use — docs/sharding.md)\n"
      "  finser_cli --help                 this text\n\n"
      "Options:\n"
      "  --print-config for `run` and `campaign`: print the fully resolved\n"
      "                 effective configuration as campaign JSON (round-trips\n"
      "                 through the campaign parser) and exit without\n"
      "                 simulating\n"
      "  --threads N    worker threads (default: FINSER_THREADS, else all\n"
      "                 hardware threads); never changes the results\n"
      "  --ci-target R  adaptive stopping: stop each energy bin's Monte Carlo\n"
      "                 once the relative 95%% CI half-width of every POF\n"
      "                 estimate is <= R, capped by the configured strike\n"
      "                 budget (0 = fixed budget; sets FINSER_CI_TARGET so\n"
      "                 shard workers inherit it; docs/statistics.md)\n"
      "  --cluster MODE correlated multi-node charge collection: group cells\n"
      "                 into MODE tiles (1x1 = independent per-cell path,\n"
      "                 byte-identical to the default; 2x2 or 1x4 price each\n"
      "                 multi-cell tile with one joint circuit simulation;\n"
      "                 sets FINSER_CLUSTER so shard workers inherit it;\n"
      "                 docs/charge_sharing.md)\n"
      "  --lanes N      SPICE engine lane width: 0 = auto (FINSER_LANES, else\n"
      "                 the widest compiled vector unit), 1 = scalar\n"
      "                 reference, 4 or 8 = batched; never changes the\n"
      "                 results (docs/spice.md)\n"
      "  --resume PATH  checkpoint file stem for `run`: progress is saved\n"
      "                 there periodically and on SIGINT/SIGTERM, and a\n"
      "                 matching checkpoint found at start is resumed —\n"
      "                 results are bit-identical to an uninterrupted run\n"
      "  --checkpoint-interval SEC  seconds between periodic checkpoint\n"
      "                 flushes (default 30; 0 = after every work unit)\n"
      "  --metrics-out PATH  enable metric collection and write a versioned\n"
      "                 JSON RunReport there at exit (docs/observability.md);\n"
      "                 FINSER_METRICS=<path> is an equivalent default\n"
      "  --trace-out PATH  also buffer per-span trace events and write a\n"
      "                 Chrome-tracing/Perfetto event file there at exit\n"
      "  --workers N    for `campaign`: run stages in N worker subprocesses\n"
      "                 under a fault-tolerant supervisor (FINSER_WORKERS is\n"
      "                 an equivalent default; 0 = in-process). Results are\n"
      "                 byte-identical at any worker count (docs/sharding.md)\n"
      "  --max-retries N  extra attempts before a crashing stage is\n"
      "                 quarantined (default 2; sharded campaigns only)\n"
      "  --stage-timeout-s SEC  per-stage wall-clock watchdog: a stage over\n"
      "                 budget is killed and retried (default 0 = off)\n"
      "  --heartbeat-timeout-s SEC  silence before a worker is presumed dead\n"
      "                 and its stage reassigned (default 30)\n"
      "  --artifact-dir DIR  for `serve`: override the campaign file's\n"
      "                 artifact_dir; for `artifacts ls`: default directory\n"
      "                 when no positional one is given\n"
      "  --max-pending N  for `serve`: bound on queued refinement requests;\n"
      "                 requests over the bound get an immediate `shed`\n"
      "                 reply instead of waiting (default 64)\n\n"
      "Exit codes:\n"
      "  0  success\n"
      "  1  unexpected error\n"
      "  2  invalid configuration or command line\n"
      "  3  numerical failure (solver gave up after its retry ladder)\n"
      "  4  interrupted, progress checkpointed (rerun to resume)\n"
      "  5  partial: sharded campaign completed with quarantined stages\n"
      "     (details in the run report's \"shard\" section)\n"
      "  6  degraded: `serve` drained, but at least one request was shed,\n"
      "     malformed, failed or cancelled (docs/serving.md)\n\n"
      "See the header of tools/finser_cli.cpp for the config-file keys.\n");
}

std::vector<std::string> split_list(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) {
    const auto b = item.find_first_not_of(" \t");
    const auto e = item.find_last_not_of(" \t");
    if (b != std::string::npos) out.push_back(item.substr(b, e - b + 1));
  }
  return out;
}

core::SerFlowConfig flow_config_from(const util::KeyValueConfig& cfg,
                                     std::size_t cli_threads) {
  core::SerFlowConfig flow;
  flow.array_rows = static_cast<std::size_t>(cfg.get_int("array.rows", 9));
  flow.array_cols = static_cast<std::size_t>(cfg.get_int("array.cols", 9));
  flow.characterization.vdds =
      cfg.get_double_list("cell.vdds", {0.7, 0.8, 0.9, 1.0, 1.1});
  flow.cell_design.sigma_vt = cfg.get_double("cell.sigma_vt", 0.05);
  flow.cell_design.cnode_f = cfg.get_double("cell.cnode_ff", 0.17) * 1e-15;
  flow.characterization.pv_samples_single =
      static_cast<std::size_t>(cfg.get_int("mc.pv_samples", 200));
  flow.array_mc.strikes = static_cast<std::size_t>(cfg.get_int("mc.strikes", 60000));
  flow.neutron_mc.histories = flow.array_mc.strikes;
  flow.seed = static_cast<std::uint64_t>(cfg.get_int("mc.seed", 20140601));
  // CLI --threads wins over the config key; both 0 = auto.
  flow.threads = cli_threads > 0
                     ? cli_threads
                     : static_cast<std::size_t>(cfg.get_int("mc.threads", 0));
  flow.lut_cache_path = cfg.get_string("lut_cache", "");
  const double ini_ci = cfg.get_double("mc.ci_target", 0.0);
  if (ini_ci < 0.0) {
    throw util::InvalidArgument("mc.ci_target must be >= 0 (0 disables "
                                "adaptive stopping)");
  }
  flow.array_mc.ci.target = ini_ci;
  flow.neutron_mc.ci.target = ini_ci;
  core::apply_mc_scale(flow, core::mc_scale_from_env());
  core::apply_ci_target(flow, core::ci_target_from_env());
  core::apply_cluster(flow, core::cluster_mode_from_env());
  return flow;
}

int cmd_run(const std::string& config_path, std::size_t cli_threads,
            const std::string& ckpt_path, double ckpt_interval,
            const std::string& metrics_out, const std::string& trace_out,
            bool print_config, const exec::CancelToken& cancel) {
  util::KeyValueConfig cfg;
  if (!config_path.empty()) {
    cfg = util::KeyValueConfig::parse_file(config_path);
  }
  const std::string out_dir = cfg.get_string("output.dir", "finser_out");
  const std::vector<std::string> species =
      split_list(cfg.get_string("species", "alpha,proton"));

  core::SerFlowConfig flow_cfg = flow_config_from(cfg, cli_threads);
  if (flow_cfg.lut_cache_path.empty()) {
    flow_cfg.lut_cache_path = out_dir + "/pof_luts.bin";
  }

  // Fail loudly on config typos before hours of Monte Carlo. The getters
  // above recorded every supported knob, so misspellings get a suggestion.
  const auto unknown = cfg.unknown_keys();
  if (!unknown.empty()) {
    for (const auto& k : unknown) {
      std::fprintf(stderr, "error: unknown config key `%s`", k.c_str());
      const std::string suggestion = cfg.suggestion_for(k);
      if (!suggestion.empty()) {
        std::fprintf(stderr, " (did you mean `%s`?)", suggestion.c_str());
      }
      std::fprintf(stderr, "\n");
    }
    return 2;
  }

  if (print_config) {
    // The fully resolved effective configuration, as a single-scenario
    // campaign document — pasteable into `finser_cli campaign` and exact:
    // it round-trips through the campaign parser unchanged.
    const pipeline::CampaignSpec spec =
        pipeline::single_scenario_campaign(flow_cfg, species, out_dir, "run");
    std::printf("%s\n", pipeline::campaign_to_json(spec).dump(2).c_str());
    return 0;
  }

  core::SerFlow flow(flow_cfg);
  const exec::ProgressSink progress(
      [](const std::string& m) { std::printf("  [%s]\n", m.c_str()); },
      std::chrono::milliseconds(250));

  // One RunOptions per sweep: the checkpoint stem gets a per-species suffix
  // so consecutive sweeps never clobber each other's progress. The cancel
  // token is always armed — Ctrl-C stops cleanly even without --resume.
  const auto run_opts_for = [&](const std::string& suffix) {
    ckpt::RunOptions run;
    if (!ckpt_path.empty()) {
      run.checkpoint_path = suffix.empty() ? ckpt_path : ckpt_path + "." + suffix;
      run.checkpoint_interval_sec = ckpt_interval;
    }
    run.cancel = &cancel;
    return run;
  };
  // Characterization checkpoints at "<stem>.cell" (cell_model adds the
  // suffix); by the time the sweeps run, the model is already in memory.
  flow.cell_model(progress, run_opts_for(""));

  util::CsvTable fit_table = pipeline::make_fit_table();
  for (const std::string& name : species) {
    const env::Spectrum spectrum = pipeline::spectrum_for_species(name);
    std::printf("sweeping %s...\n", spectrum.name().c_str());
    const auto result = flow.sweep(spectrum, progress, run_opts_for(name));
    pipeline::pof_csv(result).write_csv_file(out_dir + "/pof_" + name +
                                             ".csv");
    pipeline::append_fit_rows(fit_table, name, result);
  }
  fit_table.write_csv_file(out_dir + "/fit_summary.csv");
  std::printf("\n");
  fit_table.write_pretty(std::cout);
  std::printf("\nresults written to %s/\n", out_dir.c_str());

  if (!metrics_out.empty()) {
    obs::RunInfo info;
    info.tool = "finser_cli";
    info.command = config_path.empty() ? std::string("run")
                                       : "run " + config_path;
    info.seed = flow_cfg.seed;
    info.threads = exec::resolve_threads(flow_cfg.threads);
    info.lanes = spice::lane_width();
    info.mc_scale = core::mc_scale_from_env();
    info.config_fingerprint =
        flow_cfg.characterization.fingerprint(flow_cfg.cell_design);
    obs::write_run_report(metrics_out, info);
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    obs::write_chrome_trace(trace_out);
    std::printf("trace written to %s\n", trace_out.c_str());
  }
  return 0;
}

/// Sharding knobs extracted from the global flag pass (campaign supervisor
/// + worker subcommand).
struct ShardCliOptions {
  std::size_t workers = 0;  ///< 0 = in-process (the PR-4 path).
  bool workers_from_flag = false;
  std::size_t max_retries = 2;
  double stage_timeout_s = 0.0;
  double heartbeat_timeout_s = 30.0;
  std::uint64_t worker_id = 0;  ///< worker subcommand only.
  std::string lease_dir;        ///< worker subcommand only.
  std::string artifact_dir;     ///< worker subcommand only.
};

int cmd_worker(const std::string& campaign_path, std::size_t cli_threads,
               const ShardCliOptions& opts) {
  if (opts.lease_dir.empty()) {
    std::fprintf(stderr,
                 "error: worker needs --lease-dir (spawned by a `campaign "
                 "--workers N` supervisor; see docs/sharding.md)\n");
    return 2;
  }
  shard::WorkerConfig cfg;
  cfg.campaign_path = campaign_path;
  cfg.artifact_dir = opts.artifact_dir;
  cfg.lease_dir = opts.lease_dir;
  cfg.worker_id = opts.worker_id;
  cfg.threads = cli_threads;
  return shard::run_worker(cfg);
}

int cmd_campaign(const std::string& campaign_path, std::size_t cli_threads,
                 bool cli_lanes, const std::string& metrics_out,
                 const std::string& trace_out, bool print_config,
                 const ShardCliOptions& shard_opts,
                 const exec::CancelToken& cancel) {
  pipeline::CampaignSpec spec = pipeline::parse_campaign_file(campaign_path);
  if (cli_threads > 0) spec.threads = cli_threads;
  // --lanes wins over the campaign file's `lanes` key (both over auto).
  if (cli_lanes) spec.lanes = spice::lane_width();

  if (print_config) {
    std::printf("%s\n", pipeline::campaign_to_json(spec).dump(2).c_str());
    return 0;
  }

  if (shard_opts.workers > 0) {
    // Sharded path: worker subprocesses, lease-based supervision. Byte-
    // identical outputs to the in-process branch below (docs/sharding.md).
    const exec::ProgressSink progress(
        [](const std::string& m) { std::printf("  [%s]\n", m.c_str()); },
        std::chrono::milliseconds(250));
    shard::ShardConfig scfg;
    scfg.workers = shard_opts.workers;
    scfg.max_retries = shard_opts.max_retries;
    scfg.stage_timeout_s = shard_opts.stage_timeout_s;
    scfg.heartbeat_timeout_s = shard_opts.heartbeat_timeout_s;
    scfg.campaign_path = campaign_path;
    scfg.lanes = cli_lanes ? spice::lane_width() : 0;
    const shard::ShardResult result =
        shard::run_sharded_campaign(spec, scfg, &cancel, progress);

    std::printf("\nsharded campaign: %zu/%zu stages completed",
                result.stages_completed, result.stages_total);
    if (result.stages_resumed > 0) {
      std::printf(" (%zu resumed from a previous run)", result.stages_resumed);
    }
    std::printf("\n");
    for (const auto& f : result.failures) {
      std::printf("  %s stage %s after %zu attempts: %s\n", f.status.c_str(),
                  f.id.c_str(), f.attempts, f.reason.c_str());
    }
    if (!spec.output_dir.empty()) {
      std::printf("results written to %s/\n", spec.output_dir.c_str());
    }

    if (!metrics_out.empty()) {
      obs::RunInfo info;
      info.tool = "finser_cli";
      info.command = "campaign " + campaign_path + " --workers " +
                     std::to_string(shard_opts.workers);
      info.threads = exec::resolve_threads(spec.threads);
      info.lanes = spice::lane_width();
      info.mc_scale = core::mc_scale_from_env();
      const util::JsonValue shard_doc = shard::shard_report_json(result, scfg);
      obs::write_run_report(metrics_out, info, &shard_doc);
      std::printf("metrics written to %s\n", metrics_out.c_str());
    }
    if (!trace_out.empty()) {
      obs::write_chrome_trace(trace_out);
      std::printf("trace written to %s\n", trace_out.c_str());
    }
    switch (result.outcome) {
      case shard::ShardOutcome::kComplete:
        return 0;
      case shard::ShardOutcome::kPartial:
        return 5;
      case shard::ShardOutcome::kFailed:
        return 1;
    }
    return 1;
  }

  const exec::ProgressSink progress(
      [](const std::string& m) { std::printf("  [%s]\n", m.c_str()); },
      std::chrono::milliseconds(250));
  // Campaign resumability lives in the artifact store (every finished
  // product is cached content-addressed), so only the cancel token rides in.
  ckpt::RunOptions run;
  run.cancel = &cancel;

  pipeline::CampaignRunner runner(spec);
  const auto results = runner.run(progress, run);

  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& scenario = results[i];
    const auto& species = runner.spec().scenarios[i].species;
    util::CsvTable fit_table = pipeline::make_fit_table();
    for (std::size_t s = 0; s < scenario.sweeps.size(); ++s) {
      pipeline::append_fit_rows(fit_table, species[s], scenario.sweeps[s]);
    }
    std::printf("\nscenario %s:\n", scenario.name.c_str());
    fit_table.write_pretty(std::cout);
  }
  if (!spec.output_dir.empty()) {
    std::printf("\nresults written to %s/\n", spec.output_dir.c_str());
  }

  if (!metrics_out.empty()) {
    obs::RunInfo info;
    info.tool = "finser_cli";
    info.command = "campaign " + campaign_path;
    info.threads = exec::resolve_threads(spec.threads);
    info.lanes = spice::lane_width();
    info.mc_scale = core::mc_scale_from_env();
    obs::write_run_report(metrics_out, info);
    std::printf("metrics written to %s\n", metrics_out.c_str());
  }
  if (!trace_out.empty()) {
    obs::write_chrome_trace(trace_out);
    std::printf("trace written to %s\n", trace_out.c_str());
  }
  return 0;
}

/// A streambuf reading raw bytes from a POSIX fd with local buffering.
///
/// `serve` cannot read requests through std::cin, for two reasons:
///   - the stdio-synced streambuf reports in_avail() == 0 even when a burst
///     of requests is already buffered, which defeats ServeSession's
///     flush-at-blocking-boundary batching (one refinement per burst);
///   - the unsynced filebuf retries read(2) after EINTR, so a SIGINT/SIGTERM
///     arriving while blocked on input never surfaces and the drain hangs.
/// Owning the fd read fixes both: in_avail() reports exactly the bytes a
/// single read(2) pulled in, and an interrupted read returns eof, which ends
/// the request loop and lets the session drain (docs/serving.md).
class FdInBuf final : public std::streambuf {
 public:
  explicit FdInBuf(int fd) : fd_(fd) { setg(buf_, buf_, buf_); }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const ssize_t n = ::read(fd_, buf_, sizeof buf_);
    if (n <= 0) return traits_type::eof();  // EOF, error, or EINTR (cancel)
    setg(buf_, buf_, buf_ + n);
    return traits_type::to_int_type(*gptr());
  }

 private:
  int fd_;
  char buf_[1 << 16];
};

int cmd_serve(const std::string& campaign_path, std::size_t cli_threads,
              bool cli_lanes, std::size_t max_pending,
              const std::string& artifact_dir_override,
              const exec::CancelToken& cancel) {
  pipeline::CampaignSpec spec = pipeline::parse_campaign_file(campaign_path);
  if (cli_threads > 0) spec.threads = cli_threads;
  if (cli_lanes) spec.lanes = spice::lane_width();
  if (!artifact_dir_override.empty()) spec.artifact_dir = artifact_dir_override;
  spec.output_dir.clear();  // serve answers queries; it never emits CSV files

  // Counters feed the `stats` op (and witness the warm-restart
  // zero-characterization contract), so collection is always on here.
  finser::obs::set_enabled(true);

  // stdout carries protocol replies only; progress goes to stderr.
  const exec::ProgressSink progress(
      [](const std::string& m) { std::fprintf(stderr, "  [%s]\n", m.c_str()); },
      std::chrono::milliseconds(250));
  ckpt::RunOptions run;
  run.cancel = &cancel;

  pipeline::SurfaceProvider provider(std::move(spec), cli_threads, progress,
                                     run);
  surface::ServeConfig scfg;
  scfg.max_pending = max_pending;
  surface::ServeSession session(
      provider.catalog(), scfg,
      [&provider](const std::string& scenario, const std::string& species) {
        return provider.lookup(scenario, species);
      },
      [&provider](const std::string& scenario, const std::string& species) {
        return provider.refine(scenario, species);
      },
      &cancel);
  FdInBuf inbuf(0 /* stdin */);
  std::istream in(&inbuf);
  return session.run(in, std::cout);
}

int cmd_artifacts(const std::vector<std::string>& args,
                  const std::string& artifact_dir_flag) {
  if (args.size() < 2 || args[1] != "ls") {
    std::fprintf(stderr, "error: usage: finser_cli artifacts ls <dir>\n");
    return 2;
  }
  const std::string dir = args.size() > 2 ? args[2] : artifact_dir_flag;
  if (dir.empty()) {
    std::fprintf(stderr,
                 "error: artifacts ls needs a store directory (positional "
                 "argument or --artifact-dir)\n");
    return 2;
  }
  // Read-only open: no orphan sweep, no writes — safe to point at a store a
  // live campaign or serve process is using.
  const pipeline::ArtifactStore store(dir, /*sweep_on_open=*/false);
  const std::vector<pipeline::ArtifactStore::Entry> entries = store.list();
  std::printf("%-20s %-16s %12s  %s\n", "KIND", "FINGERPRINT", "BYTES",
              "STATUS");
  std::size_t bad = 0;
  for (const auto& e : entries) {
    char fp[17];
    std::snprintf(fp, sizeof(fp), "%016llx",
                  static_cast<unsigned long long>(e.key.fingerprint));
    std::printf("%-20s %-16s %12ju  %s\n", e.key.kind.c_str(), fp,
                static_cast<std::uintmax_t>(e.bytes), e.status.c_str());
    if (!e.ok) ++bad;
  }
  std::printf("%zu entries (%zu ok, %zu bad) in %s\n", entries.size(),
              entries.size() - bad, bad, dir.c_str());
  // An inventory is diagnostic output, not a health check: corrupt entries
  // show in STATUS but the command itself still succeeded.
  return 0;
}

int cmd_cell(double vdd) {
  const sram::CellDesign design;
  std::printf("14 nm SOI FinFET 6T cell @ Vdd = %.2f V\n", vdd);

  sram::StrikeSimulator sim(design, vdd);
  const auto kind = spice::PulseShape::Kind::kRectangular;
  const char* names[3] = {"I1 (pull-down)", "I2 (pull-up)", "I3 (pass-gate)"};
  for (int i = 0; i < 3; ++i) {
    sram::StrikeCharges dir;
    (i == 0 ? dir.i1_fc : i == 1 ? dir.i2_fc : dir.i3_fc) = 1.0;
    const double q = sram::bisect_critical_scale(sim, dir, sram::DeltaVt{}, 0.6,
                                                 1e-4, kind);
    std::printf("  Qcrit %-16s: %.4f fC (%.0f e-h pairs)\n", names[i], q,
                q / 1.602176634e-4);
  }
  const auto hold = sram::static_noise_margin(design, vdd);
  const auto read =
      sram::static_noise_margin(design, vdd, sram::AccessMode::kRead);
  std::printf("  hold SNM             : %.1f mV\n", 1e3 * hold.snm_v);
  std::printf("  read SNM             : %.1f mV\n", 1e3 * read.snm_v);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  // Armed for the whole process lifetime: SIGINT/SIGTERM request a
  // cooperative stop at the next chunk boundary instead of killing the run.
  static exec::CancelToken cancel;
  exec::install_signal_cancel(&cancel);

  try {
    // Extract the global flags, keep the rest positional.
    std::vector<std::string> args;
    std::size_t threads = 0;
    bool lanes_given = false;
    std::string ckpt_path;
    double ckpt_interval = 30.0;
    // FINSER_METRICS turns collection on; a path-like value (anything but
    // "0"/"1") doubles as the default --metrics-out destination.
    std::string metrics_out = finser::obs::configure_from_env();
    if (metrics_out == "0" || metrics_out == "1") metrics_out.clear();
    std::string trace_out;
    bool print_config = false;
    std::size_t max_pending = 64;
    ShardCliOptions shard_opts;
    // FINSER_WORKERS seeds the worker count for `campaign`; --workers wins.
    if (const char* env = std::getenv("FINSER_WORKERS");
        env != nullptr && env[0] != '\0') {
      char* end = nullptr;
      const long v = std::strtol(env, &end, 10);
      if (end != env && *end == '\0' && v >= 0) {
        shard_opts.workers = static_cast<std::size_t>(v);
      }
    }
    for (int i = 1; i < argc; ++i) {
      const std::string a = argv[i];
      if (a == "--print-config") {
        print_config = true;
        continue;
      }
      if (a == "--threads" || a == "--lanes" || a == "--resume" ||
          a == "--checkpoint-interval" || a == "--metrics-out" ||
          a == "--trace-out" || a == "--workers" || a == "--max-retries" ||
          a == "--stage-timeout-s" || a == "--heartbeat-timeout-s" ||
          a == "--worker-id" || a == "--lease-dir" || a == "--artifact-dir" ||
          a == "--ci-target" || a == "--cluster" || a == "--max-pending") {
        if (i + 1 >= argc) {
          std::fprintf(stderr, "error: %s needs a value\n", a.c_str());
          return 2;
        }
        const char* raw = argv[++i];
        if (a == "--resume") {
          ckpt_path = raw;
          continue;
        }
        if (a == "--metrics-out") {
          metrics_out = raw;
          finser::obs::set_enabled(true);
          continue;
        }
        if (a == "--trace-out") {
          trace_out = raw;
          finser::obs::set_trace_enabled(true);
          continue;
        }
        if (a == "--lease-dir") {
          shard_opts.lease_dir = raw;
          continue;
        }
        if (a == "--artifact-dir") {
          shard_opts.artifact_dir = raw;
          continue;
        }
        char* end = nullptr;
        if (a == "--ci-target") {
          const double v = std::strtod(raw, &end);
          if (end == raw || *end != '\0' || v < 0.0) {
            std::fprintf(stderr,
                         "error: --ci-target expects a relative half-width "
                         ">= 0 (0 disables stopping), got \"%s\"\n",
                         raw);
            return 2;
          }
          // Exported instead of stored: every consumer (run flow, campaign
          // runner, shard worker subprocesses) reads FINSER_CI_TARGET, so
          // the flag and the environment variable are exactly equivalent.
          setenv("FINSER_CI_TARGET", raw, 1);
          continue;
        }
        if (a == "--cluster") {
          if (!sram::cluster_mode_from(raw).has_value()) {
            std::fprintf(stderr,
                         "error: --cluster expects 1x1, 2x2 or 1x4, got "
                         "\"%s\"\n",
                         raw);
            return 2;
          }
          // Exported like --ci-target: the run flow, campaign runner and
          // shard worker subprocesses all read FINSER_CLUSTER, so the flag
          // and the environment variable are exactly equivalent.
          setenv("FINSER_CLUSTER", raw, 1);
          continue;
        }
        if (a == "--max-pending") {
          const long v = std::strtol(raw, &end, 10);
          if (end == raw || *end != '\0' || v < 1) {
            std::fprintf(stderr,
                         "error: --max-pending expects a positive integer, "
                         "got \"%s\"\n",
                         raw);
            return 2;
          }
          max_pending = static_cast<std::size_t>(v);
          continue;
        }
        if (a == "--workers" || a == "--max-retries" || a == "--worker-id") {
          const long v = std::strtol(raw, &end, 10);
          if (end == raw || *end != '\0' || v < 0) {
            std::fprintf(stderr,
                         "error: %s expects a non-negative integer, got "
                         "\"%s\"\n",
                         a.c_str(), raw);
            return 2;
          }
          if (a == "--workers") {
            shard_opts.workers = static_cast<std::size_t>(v);
            shard_opts.workers_from_flag = true;
          } else if (a == "--max-retries") {
            shard_opts.max_retries = static_cast<std::size_t>(v);
          } else {
            shard_opts.worker_id = static_cast<std::uint64_t>(v);
          }
          continue;
        }
        if (a == "--stage-timeout-s" || a == "--heartbeat-timeout-s") {
          const double v = std::strtod(raw, &end);
          if (end == raw || *end != '\0' || v < 0.0) {
            std::fprintf(stderr,
                         "error: %s expects seconds >= 0, got \"%s\"\n",
                         a.c_str(), raw);
            return 2;
          }
          if (a == "--stage-timeout-s") {
            shard_opts.stage_timeout_s = v;
          } else {
            shard_opts.heartbeat_timeout_s = v;
          }
          continue;
        }
        if (a == "--threads") {
          const long v = std::strtol(raw, &end, 10);
          if (end == raw || *end != '\0' || v <= 0) {
            std::fprintf(stderr,
                         "error: --threads expects a positive integer, got "
                         "\"%s\"\n",
                         raw);
            return 2;
          }
          threads = static_cast<std::size_t>(v);
        } else if (a == "--lanes") {
          const long v = std::strtol(raw, &end, 10);
          if (end == raw || *end != '\0' || v < 0 ||
              !spice::lane_width_valid(static_cast<std::size_t>(v))) {
            std::fprintf(stderr,
                         "error: --lanes expects 0 (auto), 1, 4 or 8, got "
                         "\"%s\"\n",
                         raw);
            return 2;
          }
          // Applies process-wide immediately: every engine below sees it.
          spice::set_lane_width(static_cast<std::size_t>(v));
          lanes_given = true;
        } else {
          const double v = std::strtod(raw, &end);
          if (end == raw || *end != '\0' || v < 0.0) {
            std::fprintf(stderr,
                         "error: --checkpoint-interval expects seconds >= 0, "
                         "got \"%s\"\n",
                         raw);
            return 2;
          }
          ckpt_interval = v;
        }
      } else {
        args.push_back(a);
      }
    }

    const std::string cmd = !args.empty() ? args[0] : "--help";
    if (cmd == "run") {
      if (shard_opts.workers_from_flag) {
        std::fprintf(stderr,
                     "error: --workers applies to `campaign` only (wrap the "
                     "run config in a single-scenario campaign, see "
                     "--print-config)\n");
        return 2;
      }
      return cmd_run(args.size() > 1 ? args[1] : "", threads, ckpt_path,
                     ckpt_interval, metrics_out, trace_out, print_config,
                     cancel);
    }
    if (cmd == "campaign") {
      if (args.size() < 2) {
        std::fprintf(stderr, "error: campaign needs a JSON file argument\n");
        return 2;
      }
      return cmd_campaign(args[1], threads, lanes_given, metrics_out,
                          trace_out, print_config, shard_opts, cancel);
    }
    if (cmd == "serve") {
      if (args.size() < 2) {
        std::fprintf(stderr, "error: serve needs a campaign JSON argument\n");
        return 2;
      }
      return cmd_serve(args[1], threads, lanes_given, max_pending,
                       shard_opts.artifact_dir, cancel);
    }
    if (cmd == "artifacts") {
      return cmd_artifacts(args, shard_opts.artifact_dir);
    }
    if (cmd == "worker") {
      if (args.size() < 2) {
        std::fprintf(stderr, "error: worker needs a campaign JSON argument\n");
        return 2;
      }
      return cmd_worker(args[1], threads, shard_opts);
    }
    if (cmd == "cell") {
      return cmd_cell(args.size() > 1 ? std::stod(args[1]) : 0.8);
    }
    print_help();
    return cmd == "--help" || cmd == "-h" ? 0 : 2;
  } catch (const util::Cancelled& e) {
    std::fprintf(stderr, "interrupted: %s\n", e.what());
    return 4;
  } catch (const util::NumericalError& e) {
    std::fprintf(stderr, "numerical failure: %s\n", e.what());
    return 3;
  } catch (const util::InvalidArgument& e) {
    std::fprintf(stderr, "invalid configuration: %s\n", e.what());
    return 2;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
