# CTest script: `finser_cli run --print-config` emits campaign JSON that must
# round-trip through the campaign parser byte-for-byte. We dump the resolved
# default config, feed the dump back through `campaign --print-config`, and
# require identical output — any normalization drift (key order, number
# formatting, defaulting) fails the diff.
#
# Inputs: -DFINSER_CLI=<path to binary> -DWORK_DIR=<scratch dir>

file(MAKE_DIRECTORY "${WORK_DIR}")

execute_process(
  COMMAND "${FINSER_CLI}" run --print-config
  OUTPUT_FILE "${WORK_DIR}/first.json"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "run --print-config failed with exit code ${rc}")
endif()

execute_process(
  COMMAND "${FINSER_CLI}" campaign "${WORK_DIR}/first.json" --print-config
  OUTPUT_FILE "${WORK_DIR}/second.json"
  RESULT_VARIABLE rc)
if(NOT rc EQUAL 0)
  message(FATAL_ERROR "campaign --print-config failed with exit code ${rc}")
endif()

execute_process(
  COMMAND ${CMAKE_COMMAND} -E compare_files
          "${WORK_DIR}/first.json" "${WORK_DIR}/second.json"
  RESULT_VARIABLE diff)
if(NOT diff EQUAL 0)
  file(READ "${WORK_DIR}/first.json" first)
  file(READ "${WORK_DIR}/second.json" second)
  message(FATAL_ERROR "print-config does not round-trip through the campaign "
                      "parser.\n--- first ---\n${first}\n--- second ---\n"
                      "${second}")
endif()
