/// \file kill_resume_harness.cpp
/// \brief End-to-end crash test: SIGKILL a checkpointed sweep mid-run, resume
/// it, and require the result bytes to match an uninterrupted reference.
///
/// Two modes share this binary:
///
///   * default (ctest KillResumeHarness) — SIGKILL a checkpointed sweep in
///     this process tree and resume it, per the plan below.
///   * `campaign <finser_cli>` (ctest KillResumeCampaign) — SIGKILL the
///     *supervisor* of a sharded campaign right after its first durable done
///     marker lands, let the orphaned workers self-terminate, re-run the
///     identical command, and require every CSV to match an uninterrupted
///     in-process reference byte-for-byte (docs/sharding.md).
///
/// Registered as a ctest (KillResumeHarness). The driver process forks three
/// children per thread count (1 and 4):
///
///   1. reference — plain sweep, no checkpointing; writes ref<t>.bin and, on
///      the first run, the shared POF-LUT cache (so later children skip the
///      expensive characterization).
///   2. victim    — checkpointed sweep with FINSER_FAULT=kill_after_flush:2:
///      the process raises SIGKILL right after the 2nd checkpoint flush
///      lands on disk. The driver asserts it died by exactly that signal.
///   3. resume    — same command, no fault: restores the checkpoint,
///      computes the remaining bins, writes out<t>.bin.
///
/// Pass criterion: out<t>.bin is byte-identical to ref<t>.bin for both
/// thread counts — the checkpoint/restore path changes nothing about the
/// numbers, only about who computed them when.

#include <sys/types.h>
#include <sys/wait.h>

#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <numbers>
#include <string>
#include <vector>

#include <unistd.h>

#include "finser/ckpt/checkpoint.hpp"
#include "finser/core/ser_flow.hpp"
#include "finser/env/spectrum.hpp"
#include "finser/util/bytes.hpp"
#include "finser/util/io.hpp"

namespace {

using namespace finser;

core::SerFlowConfig harness_config(std::size_t threads,
                                   const std::string& cache, bool with_ci,
                                   bool with_cluster) {
  core::SerFlowConfig cfg;
  cfg.array_rows = 2;
  cfg.array_cols = 2;
  cfg.characterization.vdds = {0.8};
  cfg.characterization.pv_samples_single = 10;
  cfg.characterization.pair_grid_points = 6;
  cfg.characterization.triple_grid_points = 6;
  cfg.characterization.pv_samples_grid = 6;
  cfg.array_mc.strikes = 1200;
  cfg.alpha_bins = 3;
  cfg.seed = 77;
  cfg.threads = threads;
  cfg.lut_cache_path = cache;
  if (with_ci) {
    // Adaptive leg: per-bin CI-driven early stopping must engage (small
    // chunks so the round schedule has real decision points inside the
    // budget) and its stopping state must survive kill + resume byte-for-
    // byte — the per-bin blob serializes units_used / stopped_early.
    cfg.array_mc.strikes = 2400;
    cfg.array_mc.chunk = 64;
    core::apply_ci_target(cfg, 0.35);
  }
  if (with_cluster) {
    // Cluster leg: correlated 2x2 charge collection under a near-grazing
    // beam, so checkpointed bins carry real joint multi-cell simulations —
    // the memoized cluster surface must not perturb kill + resume
    // byte-identity (its entries are pure functions of quantized keys).
    cfg.array_mc.angular = core::SourceAngularLaw::kBeam;
    const double tilt = 88.0 * std::numbers::pi / 180.0;
    cfg.array_mc.beam_direction = {std::sin(tilt), 0.05, -std::cos(tilt)};
    cfg.array_mc.cluster.mode = sram::ClusterMode::k2x2;
    cfg.array_mc.cluster.pv_samples = 4;
  }
  return cfg;
}

/// Child body: run the alpha sweep and write its exact result bytes.
int run_sweep(const std::string& workdir, std::size_t threads,
              const std::string& result_file, const std::string& cache,
              bool checkpointed, bool with_ci, bool with_cluster) {
  core::SerFlow flow(harness_config(threads, cache, with_ci, with_cluster));

  ckpt::RunOptions run;
  if (checkpointed) {
    run.checkpoint_path = workdir + "/ckpt";
    run.checkpoint_interval_sec = 0.0;  // Flush after every finished bin.
  }

  const auto result = flow.sweep(env::package_alphas(), {}, run);

  util::ByteWriter w;
  w.u64(result.per_bin.size());
  for (const auto& bin : result.per_bin) {
    const std::vector<std::uint8_t> blob = core::encode_result(bin);
    w.u64(blob.size());
    w.bytes(blob.data(), blob.size());
  }
  for (const auto& modes : result.fit) {
    for (const auto& fit : modes) {
      w.f64(fit.fit_tot);
      w.f64(fit.fit_seu);
      w.f64(fit.fit_mbu);
    }
  }
  std::string error;
  if (!util::atomic_write_file(result_file, w.data().data(), w.size(), &error)) {
    std::fprintf(stderr, "harness child: cannot write %s: %s\n",
                 result_file.c_str(), error.c_str());
    return 1;
  }
  return 0;
}

/// Fork + execv this binary in child mode; returns the raw waitpid status.
int spawn_child(const char* self, const std::string& workdir,
                std::size_t threads, const std::string& result_file,
                const std::string& cache, bool checkpointed,
                const char* fault_spec, bool with_ci = false,
                bool with_cluster = false) {
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    if (fault_spec != nullptr) {
      setenv("FINSER_FAULT", fault_spec, 1);
    } else {
      unsetenv("FINSER_FAULT");
    }
    const std::string t = std::to_string(threads);
    std::string mode = checkpointed ? "ckpt" : "plain";
    if (with_ci) mode += "-ci";
    if (with_cluster) mode += "-cl";
    std::vector<char*> argv;
    const char* args[] = {self,           "child",       workdir.c_str(),
                          t.c_str(),      result_file.c_str(), cache.c_str(),
                          mode.c_str()};
    for (const char* a : args) argv.push_back(const_cast<char*>(a));
    argv.push_back(nullptr);
    execv(self, argv.data());
    std::perror("execv");
    _exit(127);
  }
  int status = 0;
  if (waitpid(pid, &status, 0) < 0) {
    std::perror("waitpid");
    std::exit(1);
  }
  return status;
}

bool files_identical(const std::string& a, const std::string& b) {
  std::vector<std::uint8_t> da;
  std::vector<std::uint8_t> db;
  return util::read_file(a, da, nullptr) && util::read_file(b, db, nullptr) &&
         da == db;
}

int fail(const std::string& msg) {
  std::fprintf(stderr, "kill-resume harness FAILED: %s\n", msg.c_str());
  return 1;
}

int run_driver(const char* self) {
  // The harness owns its determinism: scrub every env knob that could make
  // children disagree with each other.
  unsetenv("FINSER_MC_SCALE");
  unsetenv("FINSER_THREADS");
  unsetenv("FINSER_FAULT");
  unsetenv("FINSER_CI_TARGET");
  unsetenv("FINSER_CLUSTER");

  char root_template[] = "/tmp/finser_krh_XXXXXX";
  const char* root_c = mkdtemp(root_template);
  if (root_c == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::string root = root_c;
  const std::string cache = root + "/luts.bin";

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::string tag = std::to_string(threads);
    const std::string workdir = root + "/v" + tag;
    std::filesystem::create_directories(workdir);
    const std::string ref_file = root + "/ref" + tag + ".bin";
    const std::string out_file = root + "/out" + tag + ".bin";

    // 1. Uninterrupted reference (also populates the shared LUT cache).
    int status = spawn_child(self, workdir, threads, ref_file, cache,
                             /*checkpointed=*/false, nullptr);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      return fail("reference run (threads=" + tag + ") did not exit cleanly");
    }

    // 2. Victim: dies by SIGKILL right after its 2nd checkpoint flush.
    status = spawn_child(self, workdir, threads, out_file, cache,
                         /*checkpointed=*/true, "kill_after_flush:2");
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      return fail("victim (threads=" + tag +
                  ") was expected to die by SIGKILL, status=" +
                  std::to_string(status));
    }
    if (!std::filesystem::exists(workdir + "/ckpt")) {
      return fail("victim (threads=" + tag + ") left no checkpoint behind");
    }

    // 3. Resume: restores the checkpoint and finishes the sweep.
    status = spawn_child(self, workdir, threads, out_file, cache,
                         /*checkpointed=*/true, nullptr);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      return fail("resume run (threads=" + tag + ") did not exit cleanly");
    }
    if (std::filesystem::exists(workdir + "/ckpt")) {
      return fail("completed resume (threads=" + tag +
                  ") did not remove its checkpoint");
    }
    if (!files_identical(out_file, ref_file)) {
      return fail("resumed result differs from uninterrupted reference "
                  "(threads=" + tag + ")");
    }
    std::printf("kill-resume OK at %s thread(s): bit-identical after "
                "SIGKILL + resume\n",
                tag.c_str());
  }

  // Adaptive leg: the same kill + resume discipline with CI-driven early
  // stopping enabled. The per-bin blobs now carry stopping state
  // (units_used / stopped_early), so byte-identity additionally proves a
  // resumed run replays the *same stopping decisions* as an uninterrupted
  // one — the decision is derived from the deterministic chunk prefix, not
  // stored schedule state.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::string tag = std::to_string(threads);
    const std::string workdir = root + "/ci" + tag;
    std::filesystem::create_directories(workdir);
    const std::string ref_file = root + "/ci_ref" + tag + ".bin";
    const std::string out_file = root + "/ci_out" + tag + ".bin";

    int status = spawn_child(self, workdir, threads, ref_file, cache,
                             /*checkpointed=*/false, nullptr, /*with_ci=*/true);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      return fail("adaptive reference run (threads=" + tag +
                  ") did not exit cleanly");
    }

    status = spawn_child(self, workdir, threads, out_file, cache,
                         /*checkpointed=*/true, "kill_after_flush:2",
                         /*with_ci=*/true);
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      return fail("adaptive victim (threads=" + tag +
                  ") was expected to die by SIGKILL, status=" +
                  std::to_string(status));
    }
    if (!std::filesystem::exists(workdir + "/ckpt")) {
      return fail("adaptive victim (threads=" + tag +
                  ") left no checkpoint behind");
    }

    status = spawn_child(self, workdir, threads, out_file, cache,
                         /*checkpointed=*/true, nullptr, /*with_ci=*/true);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      return fail("adaptive resume run (threads=" + tag +
                  ") did not exit cleanly");
    }
    if (!files_identical(out_file, ref_file)) {
      return fail("adaptive resumed result differs from uninterrupted "
                  "reference (threads=" + tag + ")");
    }
    std::printf("kill-resume OK at %s thread(s) with --ci-target: stopping "
                "state bit-identical after SIGKILL + resume\n",
                tag.c_str());
  }

  // Cluster leg: kill + resume with correlated 2x2 charge collection under a
  // grazing beam (real joint multi-cell simulations in the checkpointed
  // bins). Byte-identity proves the memoized cluster surface and the joint
  // scoring replay deterministically across the restore.
  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::string tag = std::to_string(threads);
    const std::string workdir = root + "/cl" + tag;
    std::filesystem::create_directories(workdir);
    const std::string ref_file = root + "/cl_ref" + tag + ".bin";
    const std::string out_file = root + "/cl_out" + tag + ".bin";

    int status = spawn_child(self, workdir, threads, ref_file, cache,
                             /*checkpointed=*/false, nullptr, /*with_ci=*/false,
                             /*with_cluster=*/true);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      return fail("cluster reference run (threads=" + tag +
                  ") did not exit cleanly");
    }

    status = spawn_child(self, workdir, threads, out_file, cache,
                         /*checkpointed=*/true, "kill_after_flush:2",
                         /*with_ci=*/false, /*with_cluster=*/true);
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      return fail("cluster victim (threads=" + tag +
                  ") was expected to die by SIGKILL, status=" +
                  std::to_string(status));
    }
    if (!std::filesystem::exists(workdir + "/ckpt")) {
      return fail("cluster victim (threads=" + tag +
                  ") left no checkpoint behind");
    }

    status = spawn_child(self, workdir, threads, out_file, cache,
                         /*checkpointed=*/true, nullptr, /*with_ci=*/false,
                         /*with_cluster=*/true);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      return fail("cluster resume run (threads=" + tag +
                  ") did not exit cleanly");
    }
    if (!files_identical(out_file, ref_file)) {
      return fail("cluster resumed result differs from uninterrupted "
                  "reference (threads=" + tag + ")");
    }
    std::printf("kill-resume OK at %s thread(s) with cluster=2x2: "
                "bit-identical after SIGKILL + resume\n",
                tag.c_str());
  }

  std::error_code ec;
  std::filesystem::remove_all(root, ec);  // Best-effort cleanup.
  std::printf("kill-resume harness PASSED\n");
  return 0;
}

// ---------------------------------------------------------------------------
// Campaign mode: SIGKILL the sharded-campaign supervisor, then resume.
// ---------------------------------------------------------------------------

/// Same tiny two-scenario campaign the shard harness uses.
void write_campaign(const std::string& path, const std::string& outdir) {
  const std::string doc = std::string("{\n")
      + "  \"campaign\": \"kill-resume\",\n"
      + "  \"seed\": 5,\n"
      + "  \"output_dir\": \"" + outdir + "\",\n"
      + "  \"defaults\": {\n"
      + "    \"rows\": 2, \"cols\": 2, \"vdds\": [0.8], \"pv_samples\": 10,\n"
      + "    \"strikes\": 600, \"histories\": 600, \"species\": [\"alpha\"]\n"
      + "  },\n"
      + "  \"scenarios\": [\n"
      + "    {\"name\": \"a\"},\n"
      + "    {\"name\": \"b\", \"pattern\": \"zeros\"}\n"
      + "  ]\n"
      + "}\n";
  std::string error;
  if (!util::atomic_write_file(path, doc.data(), doc.size(), &error)) {
    std::fprintf(stderr, "cannot write %s: %s\n", path.c_str(), error.c_str());
    std::exit(1);
  }
}

pid_t spawn_cli(const std::string& cli, const std::vector<std::string>& args) {
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(cli.c_str()));
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);
    execv(cli.c_str(), argv.data());
    std::perror("execv");
    _exit(127);
  }
  return pid;
}

/// True once the lease dir holds at least one durable `done-*` marker.
bool has_done_marker(const std::string& lease_dir) {
  std::error_code ec;
  std::filesystem::directory_iterator it(lease_dir, ec);
  if (ec) return false;
  for (const auto& entry : it) {
    if (entry.path().filename().string().rfind("done-", 0) == 0) return true;
  }
  return false;
}

int campaign_fail(const std::string& msg) {
  std::fprintf(stderr, "kill-resume campaign FAILED: %s\n", msg.c_str());
  return 1;
}

int run_campaign_driver(const std::string& cli) {
  unsetenv("FINSER_MC_SCALE");
  unsetenv("FINSER_THREADS");
  unsetenv("FINSER_WORKERS");
  unsetenv("FINSER_FAULT");
  unsetenv("FINSER_SHARD_POISON");
  unsetenv("FINSER_CLUSTER");

  char root_template[] = "/tmp/finser_krc_XXXXXX";
  const char* root_c = mkdtemp(root_template);
  if (root_c == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::string root = root_c;

  // 1. Uninterrupted in-process reference.
  const std::string ref_out = root + "/out_ref";
  write_campaign(root + "/ref.json", ref_out);
  {
    int status = 0;
    const pid_t pid = spawn_cli(cli, {"campaign", root + "/ref.json"});
    if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      return campaign_fail("in-process reference run did not exit cleanly");
    }
  }

  // 2. Victim: SIGKILL the supervisor once the first stage's durable done
  //    marker lands — workers are orphaned mid-campaign and must
  //    self-terminate when they notice the parent is gone.
  const std::string out = root + "/out";
  const std::string campaign = root + "/campaign.json";
  const std::string leases = out + "/artifacts/leases";
  write_campaign(campaign, out);
  const std::vector<std::string> cmd = {"campaign", campaign, "--workers", "2"};
  {
    const pid_t pid = spawn_cli(cli, cmd);
    bool killed = false;
    for (int i = 0; i < 12000; ++i) {  // 120 s budget at 10 ms per poll.
      int status = 0;
      const pid_t done = waitpid(pid, &status, WNOHANG);
      if (done == pid) {
        return campaign_fail("campaign finished before the harness could "
                             "SIGKILL the supervisor");
      }
      if (has_done_marker(leases)) {
        kill(pid, SIGKILL);
        killed = true;
        break;
      }
      usleep(10 * 1000);
    }
    if (!killed) {
      kill(pid, SIGKILL);
      waitpid(pid, nullptr, 0);
      return campaign_fail("no done marker appeared within 120 s");
    }
    int status = 0;
    if (waitpid(pid, &status, 0) < 0 || !WIFSIGNALED(status) ||
        WTERMSIG(status) != SIGKILL) {
      return campaign_fail("supervisor did not die by SIGKILL");
    }
    // Orphaned workers poll getppid() and exit on their own; give them a
    // moment so the resume run starts against a quiet directory.
    usleep(1500 * 1000);
  }

  // 3. Resume: the identical command honors done markers + artifact store
  //    and completes the remaining stages.
  {
    int status = 0;
    const pid_t pid = spawn_cli(cli, cmd);
    if (waitpid(pid, &status, 0) < 0 || !WIFEXITED(status) ||
        WEXITSTATUS(status) != 0) {
      return campaign_fail("resumed campaign run did not exit cleanly");
    }
  }

  // 4. Every CSV must match the uninterrupted reference byte-for-byte.
  for (const char* rel :
       {"a/pof_alpha.csv", "a/fit_summary.csv", "b/pof_alpha.csv",
        "b/fit_summary.csv", "eh_pairs_alpha.csv"}) {
    if (!files_identical(out + "/" + rel, ref_out + "/" + rel)) {
      return campaign_fail(std::string(rel) +
                           " differs from reference (or is missing)");
    }
  }

  std::error_code ec;
  std::filesystem::remove_all(root, ec);  // Best-effort cleanup.
  std::printf("kill-resume campaign PASSED: supervisor SIGKILL + resume is "
              "bit-identical\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc == 3 && std::strcmp(argv[1], "campaign") == 0) {
    return run_campaign_driver(argv[2]);
  }
  if (argc >= 2 && std::strcmp(argv[1], "child") == 0) {
    if (argc != 7) {
      std::fprintf(stderr, "harness child: bad argument count\n");
      return 2;
    }
    const std::string mode = argv[6];
    return run_sweep(argv[2], static_cast<std::size_t>(std::atol(argv[3])),
                     argv[4], argv[5], mode.rfind("ckpt", 0) == 0,
                     mode.find("-ci") != std::string::npos,
                     mode.find("-cl") != std::string::npos);
  }
  return run_driver(argv[0]);
}
