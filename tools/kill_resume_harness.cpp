/// \file kill_resume_harness.cpp
/// \brief End-to-end crash test: SIGKILL a checkpointed sweep mid-run, resume
/// it, and require the result bytes to match an uninterrupted reference.
///
/// Registered as a ctest (KillResumeHarness). The driver process forks three
/// children per thread count (1 and 4):
///
///   1. reference — plain sweep, no checkpointing; writes ref<t>.bin and, on
///      the first run, the shared POF-LUT cache (so later children skip the
///      expensive characterization).
///   2. victim    — checkpointed sweep with FINSER_FAULT=kill_after_flush:2:
///      the process raises SIGKILL right after the 2nd checkpoint flush
///      lands on disk. The driver asserts it died by exactly that signal.
///   3. resume    — same command, no fault: restores the checkpoint,
///      computes the remaining bins, writes out<t>.bin.
///
/// Pass criterion: out<t>.bin is byte-identical to ref<t>.bin for both
/// thread counts — the checkpoint/restore path changes nothing about the
/// numbers, only about who computed them when.

#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <string>
#include <vector>

#include <unistd.h>

#include "finser/ckpt/checkpoint.hpp"
#include "finser/core/ser_flow.hpp"
#include "finser/env/spectrum.hpp"
#include "finser/util/bytes.hpp"
#include "finser/util/io.hpp"

namespace {

using namespace finser;

core::SerFlowConfig harness_config(std::size_t threads,
                                   const std::string& cache) {
  core::SerFlowConfig cfg;
  cfg.array_rows = 2;
  cfg.array_cols = 2;
  cfg.characterization.vdds = {0.8};
  cfg.characterization.pv_samples_single = 10;
  cfg.characterization.pair_grid_points = 6;
  cfg.characterization.triple_grid_points = 6;
  cfg.characterization.pv_samples_grid = 6;
  cfg.array_mc.strikes = 1200;
  cfg.alpha_bins = 3;
  cfg.seed = 77;
  cfg.threads = threads;
  cfg.lut_cache_path = cache;
  return cfg;
}

/// Child body: run the alpha sweep and write its exact result bytes.
int run_sweep(const std::string& workdir, std::size_t threads,
              const std::string& result_file, const std::string& cache,
              bool checkpointed) {
  core::SerFlow flow(harness_config(threads, cache));

  ckpt::RunOptions run;
  if (checkpointed) {
    run.checkpoint_path = workdir + "/ckpt";
    run.checkpoint_interval_sec = 0.0;  // Flush after every finished bin.
  }

  const auto result = flow.sweep(env::package_alphas(), {}, run);

  util::ByteWriter w;
  w.u64(result.per_bin.size());
  for (const auto& bin : result.per_bin) {
    const std::vector<std::uint8_t> blob = core::encode_result(bin);
    w.u64(blob.size());
    w.bytes(blob.data(), blob.size());
  }
  for (const auto& modes : result.fit) {
    for (const auto& fit : modes) {
      w.f64(fit.fit_tot);
      w.f64(fit.fit_seu);
      w.f64(fit.fit_mbu);
    }
  }
  std::string error;
  if (!util::atomic_write_file(result_file, w.data().data(), w.size(), &error)) {
    std::fprintf(stderr, "harness child: cannot write %s: %s\n",
                 result_file.c_str(), error.c_str());
    return 1;
  }
  return 0;
}

/// Fork + execv this binary in child mode; returns the raw waitpid status.
int spawn_child(const char* self, const std::string& workdir,
                std::size_t threads, const std::string& result_file,
                const std::string& cache, bool checkpointed,
                const char* fault_spec) {
  const pid_t pid = fork();
  if (pid < 0) {
    std::perror("fork");
    std::exit(1);
  }
  if (pid == 0) {
    if (fault_spec != nullptr) {
      setenv("FINSER_FAULT", fault_spec, 1);
    } else {
      unsetenv("FINSER_FAULT");
    }
    const std::string t = std::to_string(threads);
    std::vector<char*> argv;
    const char* args[] = {self,           "child",       workdir.c_str(),
                          t.c_str(),      result_file.c_str(), cache.c_str(),
                          checkpointed ? "ckpt" : "plain"};
    for (const char* a : args) argv.push_back(const_cast<char*>(a));
    argv.push_back(nullptr);
    execv(self, argv.data());
    std::perror("execv");
    _exit(127);
  }
  int status = 0;
  if (waitpid(pid, &status, 0) < 0) {
    std::perror("waitpid");
    std::exit(1);
  }
  return status;
}

bool files_identical(const std::string& a, const std::string& b) {
  std::vector<std::uint8_t> da;
  std::vector<std::uint8_t> db;
  return util::read_file(a, da, nullptr) && util::read_file(b, db, nullptr) &&
         da == db;
}

int fail(const std::string& msg) {
  std::fprintf(stderr, "kill-resume harness FAILED: %s\n", msg.c_str());
  return 1;
}

int run_driver(const char* self) {
  // The harness owns its determinism: scrub every env knob that could make
  // children disagree with each other.
  unsetenv("FINSER_MC_SCALE");
  unsetenv("FINSER_THREADS");
  unsetenv("FINSER_FAULT");

  char root_template[] = "/tmp/finser_krh_XXXXXX";
  const char* root_c = mkdtemp(root_template);
  if (root_c == nullptr) {
    std::perror("mkdtemp");
    return 1;
  }
  const std::string root = root_c;
  const std::string cache = root + "/luts.bin";

  for (const std::size_t threads : {std::size_t{1}, std::size_t{4}}) {
    const std::string tag = std::to_string(threads);
    const std::string workdir = root + "/v" + tag;
    std::filesystem::create_directories(workdir);
    const std::string ref_file = root + "/ref" + tag + ".bin";
    const std::string out_file = root + "/out" + tag + ".bin";

    // 1. Uninterrupted reference (also populates the shared LUT cache).
    int status = spawn_child(self, workdir, threads, ref_file, cache,
                             /*checkpointed=*/false, nullptr);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      return fail("reference run (threads=" + tag + ") did not exit cleanly");
    }

    // 2. Victim: dies by SIGKILL right after its 2nd checkpoint flush.
    status = spawn_child(self, workdir, threads, out_file, cache,
                         /*checkpointed=*/true, "kill_after_flush:2");
    if (!WIFSIGNALED(status) || WTERMSIG(status) != SIGKILL) {
      return fail("victim (threads=" + tag +
                  ") was expected to die by SIGKILL, status=" +
                  std::to_string(status));
    }
    if (!std::filesystem::exists(workdir + "/ckpt")) {
      return fail("victim (threads=" + tag + ") left no checkpoint behind");
    }

    // 3. Resume: restores the checkpoint and finishes the sweep.
    status = spawn_child(self, workdir, threads, out_file, cache,
                         /*checkpointed=*/true, nullptr);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
      return fail("resume run (threads=" + tag + ") did not exit cleanly");
    }
    if (std::filesystem::exists(workdir + "/ckpt")) {
      return fail("completed resume (threads=" + tag +
                  ") did not remove its checkpoint");
    }
    if (!files_identical(out_file, ref_file)) {
      return fail("resumed result differs from uninterrupted reference "
                  "(threads=" + tag + ")");
    }
    std::printf("kill-resume OK at %s thread(s): bit-identical after "
                "SIGKILL + resume\n",
                tag.c_str());
  }

  std::error_code ec;
  std::filesystem::remove_all(root, ec);  // Best-effort cleanup.
  std::printf("kill-resume harness PASSED\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 2 && std::strcmp(argv[1], "child") == 0) {
    if (argc != 7) {
      std::fprintf(stderr, "harness child: bad argument count\n");
      return 2;
    }
    return run_sweep(argv[2], static_cast<std::size_t>(std::atol(argv[3])),
                     argv[4], argv[5], std::strcmp(argv[6], "ckpt") == 0);
  }
  return run_driver(argv[0]);
}
