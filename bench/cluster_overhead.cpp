/// \file cluster_overhead.cpp
/// \brief Correlated multi-node charge collection: cost and effect of the
/// cluster-aware strike pipeline (docs/charge_sharing.md) on a fixture
/// built to excite it — a near-grazing alpha beam, the standard tilted-beam
/// technique for probing MBU sensitivity. The independent per-cell model
/// (cluster 1x1) prices every touched cell from the POF LUT alone; the
/// correlated 2x2 model re-prices every multi-cell tile with one joint
/// multi-cell circuit simulation including inter-cell charge sharing, so it
/// must report *more* n >= 2 upset-multiplicity mass than the independent
/// factorization on this fixture. The JSON artifact records both the
/// wall-clock overhead and that witness.
/// Micro-benchmark: one joint 2x2 simulation vs one single-cell strike.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numbers>

#include "bench_common.hpp"
#include "finser/core/array_mc.hpp"
#include "finser/obs/obs.hpp"
#include "finser/sram/cluster.hpp"

namespace {

using namespace finser;

struct Leg {
  double seconds = 0.0;
  double tot = 0.0;
  double mbu = 0.0;
  double n2plus = 0.0;  ///< Σ_{n>=2} multiplicity[n] (with PV, lowest Vdd).
  std::uint64_t joint_sims = 0;
};

Leg run_leg(const sram::ArrayLayout& layout,
            const sram::CellSoftErrorModel& model,
            const core::SerFlowConfig& cfg, sram::ClusterMode mode) {
  core::ArrayMcConfig mc_cfg = cfg.array_mc;
  mc_cfg.angular = core::SourceAngularLaw::kBeam;
  const double tilt = 88.0 * std::numbers::pi / 180.0;
  mc_cfg.beam_direction = {std::sin(tilt), 0.05, -std::cos(tilt)};
  mc_cfg.cluster.mode = mode;
  mc_cfg.cluster_design = &cfg.cell_design;

  const std::uint64_t sims_before =
      obs::Registry::global().counter("sram.cluster.sims").total();
  const auto start = std::chrono::steady_clock::now();
  core::ArrayMc mc(layout, model, mc_cfg);
  const core::ArrayMcResult result = mc.run(phys::Species::kAlpha, 1.0, 777);
  Leg leg;
  leg.seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
          .count();
  leg.joint_sims =
      obs::Registry::global().counter("sram.cluster.sims").total() -
      sims_before;
  const core::PofEstimate& est = result.est[0][core::kModeWithPv];
  leg.tot = est.tot;
  leg.mbu = est.mbu;
  for (std::size_t n = 2; n < core::kMaxMultiplicity; ++n) {
    leg.n2plus += est.multiplicity[n];
  }
  return leg;
}

void report() {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  cfg.array_mc.strikes = std::max<std::size_t>(
      1, static_cast<std::size_t>(6000 * core::mc_scale_from_env()));
  core::SerFlow flow(cfg);
  flow.cell_model(bench::progress_printer());
  const auto& model = flow.cell_model();

  obs::Registry::global().reset();
  obs::set_enabled(true);
  const Leg indep = run_leg(flow.layout(), model, cfg, sram::ClusterMode::k1x1);
  const Leg corr = run_leg(flow.layout(), model, cfg, sram::ClusterMode::k2x2);
  obs::set_enabled(false);
  obs::Registry::global().reset();

  util::CsvTable t({"mode", "seconds", "pof_tot", "pof_mbu", "n2plus_mass",
                    "joint_sims"});
  t.add_row({std::string("1x1"), indep.seconds, indep.tot, indep.mbu,
             indep.n2plus, static_cast<double>(indep.joint_sims)});
  t.add_row({std::string("2x2"), corr.seconds, corr.tot, corr.mbu,
             corr.n2plus, static_cast<double>(corr.joint_sims)});
  bench::emit(t, "cluster_overhead",
              "Cluster-aware strike pipeline: independent (1x1) vs "
              "correlated (2x2) under an 88° grazing alpha beam (1 MeV, "
              "0.7 V, with PV)");

  const double overhead = indep.seconds > 0.0
                              ? corr.seconds / indep.seconds
                              : 0.0;
  std::filesystem::create_directories(bench::kOutDir);
  const std::string path =
      std::string(bench::kOutDir) + "/cluster_overhead.json";
  std::ofstream os(path);
  char body[768];
  std::snprintf(body, sizeof body,
                "{\n%s"
                "  \"kernel\": \"cluster_strike_pipeline\",\n"
                "  \"fixture\": \"alpha 1 MeV beam, 88 deg tilt, 9x9\",\n"
                "  \"strikes\": %zu,\n"
                "  \"independent_seconds\": %.6f,\n"
                "  \"correlated_seconds\": %.6f,\n"
                "  \"overhead_x\": %.3f,\n"
                "  \"joint_sims\": %llu,\n"
                "  \"n2plus_independent\": %.9g,\n"
                "  \"n2plus_correlated\": %.9g,\n"
                "  \"correlated_exceeds_independent\": %s\n"
                "}\n",
                bench::machine_json_fields().c_str(), cfg.array_mc.strikes,
                indep.seconds, corr.seconds, overhead,
                static_cast<unsigned long long>(corr.joint_sims),
                indep.n2plus, corr.n2plus,
                corr.n2plus > indep.n2plus ? "true" : "false");
  os << body;
  std::printf("[json] %s\n", path.c_str());
  std::printf("n>=2 mass: independent %.3e vs correlated %.3e (%s)\n",
              indep.n2plus, corr.n2plus,
              corr.n2plus > indep.n2plus ? "correlated exceeds independent"
                                         : "NO EXCESS — check fixture");
}

void bm_joint_2x2_sim(benchmark::State& state) {
  const sram::CellDesign design;
  sram::ClusterSimulator sim(design, 0.8, 2, 2);
  std::vector<sram::ClusterSimulator::CellStrike> strikes(2);
  strikes[0].local = 0;
  strikes[0].charges.i1_fc = 0.2;
  strikes[1].local = 1;
  strikes[1].charges.i1_fc = 0.15;
  const std::vector<sram::DeltaVt> dvts(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sim.simulate(strikes, dvts, spice::PulseShape::Kind::kRectangular));
  }
}
BENCHMARK(bm_joint_2x2_sim);

void bm_single_cell_sim(benchmark::State& state) {
  const sram::CellDesign design;
  sram::StrikeSimulator sim(design, 0.8);
  sram::StrikeCharges charges;
  charges.i1_fc = 0.2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate(
        charges, sram::DeltaVt{}, spice::PulseShape::Kind::kRectangular));
  }
}
BENCHMARK(bm_single_cell_sim);

}  // namespace

FINSER_BENCH_MAIN(report)
