/// \file ablation_integrator.cpp
/// \brief Numerical-methods ablation of the SPICE substrate: does the
/// critical charge depend on the integrator (backward Euler vs trapezoidal)
/// or the maximum step size? It must not — the flip decision is set by
/// charge conservation, not step-local accuracy — and this bench documents
/// the margin, validating the solver settings baked into StrikeSimulator.
/// Micro-benchmarks: transient cost per integrator.

#include "bench_common.hpp"
#include "finser/spice/dc.hpp"
#include "finser/sram/characterize.hpp"

namespace {

using namespace finser;

/// Qcrit with explicit transient controls (bypasses StrikeSimulator's
/// defaults by rebuilding the cell circuit — also a public-API workout).
double qcrit_with(spice::Integrator method, double dt_max_s) {
  const double vdd = 0.8;
  const sram::CellDesign design;

  auto flips = [&](double q_fc) {
    spice::Circuit c;
    const auto q = c.node("q"), qb = c.node("qb"), nvdd = c.node("vdd");
    const auto bl = c.node("bl"), blb = c.node("blb"), wl = c.node("wl");
    c.add<spice::VSource>(c, nvdd, spice::kGround, vdd);
    c.add<spice::VSource>(c, bl, spice::kGround, vdd);
    c.add<spice::VSource>(c, blb, spice::kGround, vdd);
    c.add<spice::VSource>(c, wl, spice::kGround, 0.0);
    c.add<spice::Mosfet>(q, qb, spice::kGround, spice::default_nfet());
    c.add<spice::Mosfet>(q, qb, nvdd, spice::default_pfet());
    c.add<spice::Mosfet>(qb, q, spice::kGround, spice::default_nfet());
    c.add<spice::Mosfet>(qb, q, nvdd, spice::default_pfet());
    c.add<spice::Mosfet>(bl, wl, q, spice::default_nfet());
    c.add<spice::Mosfet>(blb, wl, qb, spice::default_nfet());
    c.add<spice::Capacitor>(q, spice::kGround, design.cnode_f);
    c.add<spice::Capacitor>(qb, spice::kGround, design.cnode_f);
    const double tau_s = phys::transit_time_fs(design.tech, vdd) * 1e-15;
    c.add<spice::PulseISource>(
        q, spice::kGround,
        spice::PulseShape::rectangular_for_charge(q_fc * 1e-15, tau_s, 1e-12));
    std::vector<double> guess(c.unknown_count(), 0.0);
    guess[q] = vdd;
    guess[nvdd] = vdd;
    guess[bl] = vdd;
    guess[blb] = vdd;
    const auto x0 = spice::solve_dc(c, guess);
    spice::TransientOptions opt;
    opt.t_end = 50e-12;
    opt.dt_max = dt_max_s;
    opt.method = method;
    const auto w = spice::run_transient(c, x0, opt, {"q", "qb"});
    return w.final_value(0) < 0.5 * vdd && w.final_value(1) > 0.5 * vdd;
  };

  double lo = 0.0, hi = 0.6;
  for (int i = 0; i < 18; ++i) {
    const double mid = 0.5 * (lo + hi);
    (flips(mid) ? hi : lo) = mid;
  }
  return hi;
}

void report() {
  const double ref = qcrit_with(spice::Integrator::kBackwardEuler, 1e-12);
  util::CsvTable t({"integrator", "dt_max_ps", "qcrit_fc", "vs_ref_pct"});
  for (auto [name, method] :
       {std::pair{"backward-euler", spice::Integrator::kBackwardEuler},
        std::pair{"trapezoidal", spice::Integrator::kTrapezoidal}}) {
    for (double dt_ps : {0.1, 1.0, 5.0}) {
      const double q = qcrit_with(method, dt_ps * 1e-12);
      t.add_row({std::string(name), dt_ps, q, 100.0 * (q - ref) / ref});
    }
  }
  bench::emit(t, "ablation_integrator",
              "Solver ablation: Qcrit vs integrator and max step (0.8 V)");
}

void bm_transient_be(benchmark::State& state) {
  sram::StrikeSimulator sim(sram::CellDesign{}, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate(sram::StrikeCharges{0.13, 0, 0}));
  }
}
BENCHMARK(bm_transient_be)->Unit(benchmark::kMicrosecond);

}  // namespace

FINSER_BENCH_MAIN(report)
