/// \file extension_heavy_ion_let.cpp
/// \brief Space-environment extension: the upset cross-section vs LET curve
/// (the quantity heavy-ion accelerator campaigns measure for space
/// qualification). Instead of a particle species with a stopping-power
/// model, a heavy ion near its track maximum is characterized directly by
/// its LET: deposited charge = LET × chord. Sweeping LET over the array
/// geometry yields the classic Weibull-shaped σ(LET): zero below the
/// threshold LET (where even the longest chord misses Q_crit), a steep rise,
/// and saturation at the total sensitive area. Also reports the MBU share
/// vs LET — high-LET ions upset whole clusters.
/// Micro-benchmark: the chord-collection kernel.

#include <cmath>

#include "bench_common.hpp"
#include "finser/core/pof_combine.hpp"
#include "finser/geom/box_set.hpp"
#include "finser/phys/collection.hpp"
#include "finser/stats/direction.hpp"
#include "finser/util/units.hpp"

namespace {

using namespace finser;

/// POF of the array under ions of fixed LET [MeV·cm²/mg], isotropic
/// downward flux over the footprint. Returns {pof_tot, pof_mbu}.
std::pair<double, double> pof_at_let(const sram::ArrayLayout& layout,
                                     const sram::CellSoftErrorModel& model,
                                     geom::UniformGrid& grid, double vdd,
                                     double let_mev_cm2_mg, std::size_t strikes,
                                     stats::Rng& rng) {
  // LET [MeV·cm²/mg] → charge per path [fC/nm] in silicon:
  // dE/dx = LET · rho = LET · 2.329e3 mg/cm³ → MeV/cm; 1 pair / 3.6 eV.
  const double mev_per_nm = let_mev_cm2_mg * 2.329e3 * 1e-7;
  const double fc_per_nm =
      phys::charge_fc_from_pairs(util::mev_to_ev(mev_per_nm) / 3.6);

  std::vector<geom::BoxHit> hits;
  std::vector<double> pofs;
  std::vector<sram::StrikeCharges> charges(layout.cell_count());
  std::vector<std::uint32_t> touched;
  const sram::PofTable& table = model.at_vdd(vdd);

  double tot = 0.0, mbu = 0.0;
  for (std::size_t s = 0; s < strikes; ++s) {
    geom::Ray ray;
    ray.origin = {rng.uniform(0.0, layout.width_nm()),
                  rng.uniform(0.0, layout.height_nm()),
                  layout.bounds().hi.z + 1.0};
    ray.dir = stats::isotropic_hemisphere_down(rng);
    if (ray.dir.z == 0.0) ray.dir.z = -1e-12;
    grid.query(ray, hits);

    for (std::uint32_t c : touched) charges[c] = sram::StrikeCharges{};
    touched.clear();
    for (const auto& hit : hits) {
      const auto& site = layout.site(hit.id);
      const bool bit = layout.bit(site.cell_row, site.cell_col);
      const auto idx = sram::ArrayLayout::strike_index(site.role, bit);
      if (!idx) continue;
      const std::uint32_t cell =
          site.cell_row * static_cast<std::uint32_t>(layout.cols()) +
          site.cell_col;
      auto& ch = charges[cell];
      if (!ch.any()) touched.push_back(cell);
      const double q = hit.interval.length() * fc_per_nm *
                       layout.collection_efficiency(hit.id);
      switch (*idx) {
        case 0: ch.i1_fc += q; break;
        case 1: ch.i2_fc += q; break;
        case 2: ch.i3_fc += q; break;
        default: break;
      }
    }
    pofs.clear();
    for (std::uint32_t c : touched) {
      const double p = table.pof(charges[c], true);
      if (p > 0.0) pofs.push_back(p);
    }
    if (!pofs.empty()) {
      const auto combined = core::combine_eqs_4_to_6(pofs);
      tot += combined.tot;
      mbu += combined.mbu;
    }
  }
  return {tot / static_cast<double>(strikes), mbu / static_cast<double>(strikes)};
}

void report() {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  core::SerFlow flow(cfg);
  const auto& model = flow.cell_model(bench::progress_printer());
  const sram::ArrayLayout& layout = flow.layout();
  geom::UniformGrid grid(layout.fins());
  const auto strikes = static_cast<std::size_t>(40000 * core::mc_scale_from_env());

  // The per-strike POF times the sampled area is the upset cross-section
  // [cm² per array] the beam community plots.
  const double area_cm2 = util::nm_to_cm(layout.width_nm()) *
                          util::nm_to_cm(layout.height_nm());

  util::CsvTable t({"let_mev_cm2_mg", "pof_per_ion", "cross_section_cm2",
                    "mbu_seu_pct"});
  stats::Rng rng(31415);
  for (double let : {0.2, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 40.0, 80.0}) {
    const auto [tot, mbu] =
        pof_at_let(layout, model, grid, 0.8, let, strikes, rng);
    const double seu = tot - mbu;
    t.add_row({let, tot, tot * area_cm2,
               seu > 0.0 ? 100.0 * mbu / seu : 0.0});
  }
  bench::emit(t, "extension_heavy_ion_let",
              "Space extension: upset cross-section vs LET (0.8 V)");
}

void bm_let_kernel(benchmark::State& state) {
  const sram::ArrayLayout layout(9, 9, sram::CellGeometry{});
  geom::UniformGrid grid(layout.fins());
  stats::Rng rng(2);
  std::vector<geom::BoxHit> hits;
  for (auto _ : state) {
    geom::Ray ray;
    ray.origin = {rng.uniform(0.0, layout.width_nm()),
                  rng.uniform(0.0, layout.height_nm()), 27.0};
    ray.dir = stats::isotropic_hemisphere_down(rng);
    grid.query(ray, hits);
    double q = 0.0;
    for (const auto& h : hits) q += h.interval.length();
    benchmark::DoNotOptimize(q);
  }
}
BENCHMARK(bm_let_kernel);

}  // namespace

FINSER_BENCH_MAIN(report)
