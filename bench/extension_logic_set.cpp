/// \file extension_logic_set.cpp
/// \brief Combinational-logic counterpart of the paper's SRAM analysis
/// (the territory of its refs [14][15]): single-event-transient critical
/// charge, electrical masking vs chain depth, output glitch width vs
/// deposited charge, and the latching-window derating that turns glitches
/// into architectural errors. Together with the SRAM results this bounds
/// the full-chip picture: memories dominate at low clock rates, logic
/// catches up as frequency rises (more latching windows per second).
/// Micro-benchmark: SET injection transients.

#include "bench_common.hpp"
#include "finser/logic/set_chain.hpp"

namespace {

using namespace finser;

void report() {
  // (a) Logic vs SRAM critical charge across the Vdd sweep.
  {
    util::CsvTable t({"vdd_v", "qcrit_logic_fc", "glitch_width_2q_ps"});
    for (double vdd : {0.7, 0.8, 0.9, 1.0, 1.1}) {
      logic::SetChainSimulator sim(logic::ChainDesign{}, vdd);
      const double qc = sim.critical_charge_fc();
      const auto out = sim.inject(2.0 * qc);
      t.add_row({vdd, qc, out.width_out_s * 1e12});
    }
    bench::emit(t, "logic_qcrit_vs_vdd",
                "Logic SET: critical charge and glitch width vs Vdd");
  }

  // (b) Electrical masking: Qcrit vs chain depth.
  {
    util::CsvTable t({"stages", "qcrit_fc"});
    for (std::size_t stages : {1u, 2u, 4u, 8u, 12u, 16u, 24u}) {
      logic::ChainDesign d;
      d.stages = stages;
      logic::SetChainSimulator sim(d, 0.8);
      t.add_row({static_cast<double>(stages), sim.critical_charge_fc()});
    }
    bench::emit(t, "logic_electrical_masking",
                "Logic SET: electrical masking (Qcrit vs chain depth, 0.8 V)");
  }

  // (c) Latching-window derating: capture probability of the glitch a
  // 2x-critical alpha-class deposit produces, vs clock frequency.
  {
    logic::SetChainSimulator sim(logic::ChainDesign{}, 0.8);
    const double qc = sim.critical_charge_fc();
    const double w = sim.inject(2.0 * qc).width_out_s;
    util::CsvTable t({"clock_ghz", "capture_probability"});
    for (double ghz : {0.5, 1.0, 2.0, 3.0, 5.0}) {
      t.add_row({ghz, logic::latch_capture_probability(w, 1e-9 / ghz, 5e-12)});
    }
    bench::emit(t, "logic_latching_window",
                "Logic SET: latching-window capture vs clock frequency");
  }
}

void bm_set_injection(benchmark::State& state) {
  logic::SetChainSimulator sim(logic::ChainDesign{}, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.inject(0.2));
  }
}
BENCHMARK(bm_set_injection)->Unit(benchmark::kMicrosecond);

}  // namespace

FINSER_BENCH_MAIN(report)
