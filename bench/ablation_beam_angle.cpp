/// \file ablation_beam_angle.cpp
/// \brief Accelerated-test perspective: array POF and MBU share under a
/// monodirectional alpha beam as a function of tilt angle. Beam testing at
/// normal incidence (the cheapest setup) systematically *underestimates*
/// the multi-cell upset rate of an isotropic field — tilted-beam protocols
/// exist precisely because grazing incidence excites the multi-cell
/// geometry. This bench quantifies the tilt dependence for the 9×9 array
/// and compares against the isotropic reference.
/// Micro-benchmark: the transport kernel at grazing incidence (longer
/// in-layer chords → more boxes per query).

#include <cmath>
#include <numbers>

#include "bench_common.hpp"
#include "finser/stats/direction.hpp"

namespace {

using namespace finser;

void report() {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  core::SerFlow flow(cfg);
  flow.cell_model(bench::progress_printer());
  const auto& model = flow.cell_model();

  util::CsvTable t({"tilt_deg", "pof_tot", "pof_mbu", "mbu_seu_pct"});
  const double e_mev = 2.0;  // Near the alpha deposit maximum.

  for (double tilt_deg : {0.0, 30.0, 45.0, 60.0, 75.0, 85.0}) {
    core::ArrayMcConfig mc_cfg = cfg.array_mc;
    mc_cfg.angular = core::SourceAngularLaw::kBeam;
    const double tilt = tilt_deg * std::numbers::pi / 180.0;
    mc_cfg.beam_direction = {std::sin(tilt), 0.0, -std::cos(tilt)};
    core::ArrayMc mc(flow.layout(), model, mc_cfg);
    const auto est = mc.run(phys::Species::kAlpha, e_mev, 777)
                         .est[0][core::kModeWithPv];  // Vdd = 0.7 V.
    t.add_row({tilt_deg, est.tot, est.mbu,
               est.seu > 0.0 ? 100.0 * est.mbu / est.seu : 0.0});
  }

  // Isotropic reference row (tilt column = -1 as a marker).
  {
    core::ArrayMcConfig mc_cfg = cfg.array_mc;
    core::ArrayMc mc(flow.layout(), model, mc_cfg);
    const auto est =
        mc.run(phys::Species::kAlpha, e_mev, 778).est[0][core::kModeWithPv];
    t.add_row({-1.0, est.tot, est.mbu,
               est.seu > 0.0 ? 100.0 * est.mbu / est.seu : 0.0});
  }
  bench::emit(t, "ablation_beam_angle",
              "Beam-test ablation: POF and MBU vs tilt (alpha, 2 MeV, 0.7 V; "
              "tilt -1 = isotropic reference)");
}

void bm_grazing_transport(benchmark::State& state) {
  const sram::ArrayLayout layout(9, 9, sram::CellGeometry{});
  phys::Transporter tr(layout.fins());
  stats::Rng rng(3);
  const geom::Vec3 dir = geom::Vec3{1.0, 0.05, -0.06}.normalized();
  for (auto _ : state) {
    geom::Ray ray;
    ray.origin = {rng.uniform(0.0, layout.width_nm()),
                  rng.uniform(0.0, layout.height_nm()), 27.0};
    ray.dir = dir;
    benchmark::DoNotOptimize(tr.transport(ray, phys::Species::kAlpha, 2.0, rng));
  }
}
BENCHMARK(bm_grazing_transport);

}  // namespace

FINSER_BENCH_MAIN(report)
