/// \file fig9_fit_vdd.cpp
/// \brief Reproduces paper Fig. 9: the normalized FIT rate of the 9×9 array
/// versus supply voltage for proton and alpha radiation (Eq. 8 over the
/// Fig. 2 spectra). The headline: both rise as Vdd drops, the curves are
/// comparable at Vdd = 0.7 V, and the proton curve collapses much faster at
/// higher Vdd. Micro-benchmark: the FIT integration kernel.

#include "bench_common.hpp"

namespace {

using namespace finser;

void report() {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  core::SerFlow flow(cfg);
  flow.cell_model(bench::progress_printer());

  const auto rp = flow.sweep(env::sea_level_protons(), bench::progress_printer());
  const auto ra = flow.sweep(env::package_alphas(), bench::progress_printer());

  // Normalize by the common minimum's scale: the paper normalizes the whole
  // figure; use the alpha FIT at the highest Vdd as the reference "1".
  const double ref = ra.fit.back()[core::kModeWithPv].fit_tot;
  const double norm = ref > 0.0 ? ref : 1.0;

  util::CsvTable t({"vdd_v", "proton_fit_norm", "alpha_fit_norm",
                    "proton_fit", "alpha_fit", "proton_over_alpha"});
  for (std::size_t v = 0; v < rp.vdds.size(); ++v) {
    const double p = rp.fit[v][core::kModeWithPv].fit_tot;
    const double a = ra.fit[v][core::kModeWithPv].fit_tot;
    t.add_row({rp.vdds[v], p / norm, a / norm, p, a, a > 0.0 ? p / a : 0.0});
  }
  bench::emit(t, "fig9_fit_vs_vdd",
              "Fig. 9: normalized FIT rate vs Vdd (proton vs alpha)");
}

void bm_fit_integration(benchmark::State& state) {
  std::vector<env::EnergyBin> bins;
  std::vector<core::PofEstimate> pofs;
  const env::Spectrum p = env::sea_level_protons();
  bins = p.discretize(0.1, 100.0, 16);
  pofs.resize(bins.size());
  for (std::size_t i = 0; i < pofs.size(); ++i) {
    pofs[i].tot = 1e-3 / static_cast<double>(i + 1);
    pofs[i].seu = 0.9 * pofs[i].tot;
    pofs[i].mbu = 0.1 * pofs[i].tot;
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(core::integrate_fit(bins, pofs, 3420.0, 1440.0));
  }
}
BENCHMARK(bm_fit_integration);

void bm_spectrum_discretize(benchmark::State& state) {
  const env::Spectrum p = env::sea_level_protons();
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.discretize(0.1, 100.0, 12));
  }
}
BENCHMARK(bm_spectrum_discretize);

}  // namespace

FINSER_BENCH_MAIN(report)
