/// \file kernel_perf.cpp
/// \brief Performance characterization of the computational kernels behind
/// the cross-layer flow (the paper quotes ~2 h for a 10M-strike campaign on
/// its setup; this bench documents what finser achieves per kernel).
/// Report: a runtime budget table for the paper-scale campaign.

#include <chrono>

#include "bench_common.hpp"
#include "finser/phys/track.hpp"
#include "finser/spice/dc.hpp"
#include "finser/spice/devices.hpp"
#include "finser/spice/transient.hpp"
#include "finser/sram/cell.hpp"
#include "finser/stats/direction.hpp"

namespace {

using namespace finser;

void report() {
  // Measure the two dominant costs directly and extrapolate the paper-scale
  // campaign (10M strikes, 18 energy points, full characterization).
  util::CsvTable t({"kernel", "per_op_us", "paper_scale_ops", "minutes"});

  {
    const sram::ArrayLayout layout(9, 9, sram::CellGeometry{});
    phys::Transporter tr(layout.fins());
    stats::Rng rng(1);
    const auto start = std::chrono::steady_clock::now();
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      geom::Ray ray;
      ray.origin = {rng.uniform(0.0, layout.width_nm()),
                    rng.uniform(0.0, layout.height_nm()), 27.0};
      ray.dir = stats::isotropic_hemisphere_down(rng);
      if (ray.dir.z == 0.0) ray.dir.z = -1e-12;
      benchmark::DoNotOptimize(tr.transport(ray, phys::Species::kAlpha, 2.0, rng));
    }
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count() /
                      n;
    t.add_row({std::string("array-MC strike transport"), us, 1e7 * 22,
               us * 1e7 * 22 / 60e6});
  }
  {
    sram::StrikeSimulator sim(sram::CellDesign{}, 0.8);
    const auto start = std::chrono::steady_clock::now();
    const int n = 300;
    for (int i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(sim.simulate(sram::StrikeCharges{0.1, 0, 0}));
    }
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count() /
                      n;
    // Paper-scale characterization: 1000 PV samples x ~12 bisection sims x
    // 3 currents x 5 Vdd + grids.
    const double ops = 1000.0 * 12 * 3 * 5 + 5 * 4000;
    t.add_row({std::string("SPICE strike transient"), us, ops,
               us * ops / 60e6});
  }
  bench::emit(t, "kernel_perf",
              "Runtime budget of the paper-scale campaign on this machine");
}

void bm_lu_solve_10x10(benchmark::State& state) {
  for (auto _ : state) {
    spice::Mna m(10);
    for (std::size_t i = 0; i < 10; ++i) {
      for (std::size_t j = 0; j < 10; ++j) {
        m.add(i, j, i == j ? 3.0 : 0.1 * static_cast<double>((i * 7 + j) % 5));
      }
      m.add_rhs(i, 1.0);
    }
    benchmark::DoNotOptimize(m.solve());
  }
}
BENCHMARK(bm_lu_solve_10x10);

void bm_finfet_eval(benchmark::State& state) {
  double vg = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        spice::evaluate_finfet(spice::default_nfet(), 0.8, vg, 0.0, 0.0, 1.0));
    vg = vg < 0.8 ? vg + 1e-3 : 0.0;
  }
}
BENCHMARK(bm_finfet_eval);

void bm_dc_operating_point(benchmark::State& state) {
  sram::StrikeSimulator sim(sram::CellDesign{}, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.hold_state());
  }
}
BENCHMARK(bm_dc_operating_point)->Unit(benchmark::kMicrosecond);

void bm_transport_single(benchmark::State& state) {
  const sram::ArrayLayout layout(9, 9, sram::CellGeometry{});
  phys::Transporter tr(layout.fins());
  stats::Rng rng(2);
  for (auto _ : state) {
    geom::Ray ray;
    ray.origin = {rng.uniform(0.0, layout.width_nm()),
                  rng.uniform(0.0, layout.height_nm()), 27.0};
    ray.dir = stats::isotropic_hemisphere_down(rng);
    if (ray.dir.z == 0.0) ray.dir.z = -1e-12;
    benchmark::DoNotOptimize(tr.transport(ray, phys::Species::kProton, 1.0, rng));
  }
}
BENCHMARK(bm_transport_single);

}  // namespace

FINSER_BENCH_MAIN(report)
