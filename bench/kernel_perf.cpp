/// \file kernel_perf.cpp
/// \brief Performance characterization of the computational kernels behind
/// the cross-layer flow (the paper quotes ~2 h for a 10M-strike campaign on
/// its setup; this bench documents what finser achieves per kernel).
/// Report: a runtime budget table for the paper-scale campaign.

#include <algorithm>
#include <array>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <optional>
#include <vector>

#include "bench_common.hpp"
#include "finser/ckpt/checkpoint.hpp"
#include "finser/core/array_mc.hpp"
#include "finser/exec/exec.hpp"
#include "finser/obs/obs.hpp"
#include "finser/pipeline/campaign.hpp"
#include "finser/phys/track.hpp"
#include "finser/spice/dc.hpp"
#include "finser/spice/devices.hpp"
#include "finser/spice/transient.hpp"
#include "finser/sram/cell.hpp"
#include "finser/stats/direction.hpp"

namespace {

using namespace finser;

/// Threshold cell model (no SPICE): deposits above q_thresh flip. Keeps the
/// thread-scaling sweep a pure measurement of the array-MC kernel.
sram::CellSoftErrorModel threshold_model(double vdd, double q_thresh_fc) {
  sram::PofTable t;
  t.vdd_v = vdd;
  t.q_max_fc = 0.4;
  for (auto& s : t.singles) {
    s.nominal_qcrit_fc = q_thresh_fc;
    s.total_samples = 2;
    s.qcrit_samples_fc = {0.9 * q_thresh_fc, 1.1 * q_thresh_fc};
  }
  const util::Axis axis({0.0, q_thresh_fc, 0.4});
  std::vector<double> v(9, 1.0);
  v[0] = 0.0;
  for (int p = 0; p < 3; ++p) {
    t.pairs_pv[static_cast<std::size_t>(p)] = util::Grid2(axis, axis, v);
    t.pairs_nominal[static_cast<std::size_t>(p)] = util::Grid2(axis, axis, v);
  }
  std::vector<double> v3(27, 1.0);
  v3[0] = 0.0;
  t.triple_pv = util::Grid3(axis, axis, axis, v3);
  t.triple_nominal = util::Grid3(axis, axis, axis, v3);
  sram::CellSoftErrorModel m;
  m.tables.push_back(std::move(t));
  return m;
}

/// Thread-scaling sweep of the array-MC strike loop (1/2/4/8 threads, same
/// seed). Emits the machine-readable bench_out/parallel_scaling.json and a
/// human-readable CSV, and cross-checks the determinism contract: every
/// thread count must reproduce the single-thread POF bit-for-bit.
void report_parallel_scaling() {
  const sram::ArrayLayout layout(9, 9, sram::CellGeometry{});
  const sram::CellSoftErrorModel model = threshold_model(0.8, 0.02);

  core::ArrayMcConfig cfg;
  cfg.strikes = 40000;
  cfg.chunk = 512;
  const std::uint64_t seed = 20140601;

  util::CsvTable t(
      {"threads", "seconds", "strikes_per_s", "speedup_vs_1", "identical"});
  double t1_seconds = 0.0;
  double ref_tot = 0.0;
  bool all_identical = true;
  std::string rows_json;

  for (std::size_t threads : {1u, 2u, 4u, 8u}) {
    cfg.threads = threads;
    core::ArrayMc mc(layout, model, cfg);
    // One warm-up run (spawns the worker threads, faults in the LUTs), then
    // the timed run.
    mc.run(phys::Species::kAlpha, 2.0, seed);
    const auto start = std::chrono::steady_clock::now();
    const auto res = mc.run(phys::Species::kAlpha, 2.0, seed);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();

    const double tot = res.est[0][core::kModeWithPv].tot;
    if (threads == 1) {
      t1_seconds = seconds;
      ref_tot = tot;
    }
    const bool identical = tot == ref_tot;
    all_identical = all_identical && identical;
    const double speedup = seconds > 0.0 ? t1_seconds / seconds : 0.0;
    const double rate = seconds > 0.0
                            ? static_cast<double>(cfg.strikes) / seconds
                            : 0.0;
    t.add_row({static_cast<double>(threads), seconds, rate, speedup,
               identical ? 1.0 : 0.0});

    char row[256];
    std::snprintf(row,
                  sizeof row,
                  "%s    {\"threads\": %zu, \"seconds\": %.6f, "
                  "\"strikes_per_s\": %.1f, \"speedup_vs_1\": %.3f, "
                  "\"identical_to_1_thread\": %s}",
                  rows_json.empty() ? "" : ",\n", threads, seconds, rate,
                  speedup, identical ? "true" : "false");
    rows_json += row;
  }

  bench::emit(t, "parallel_scaling",
              "Array-MC thread scaling (same seed; identical must be 1)");

  std::filesystem::create_directories(bench::kOutDir);
  const std::string path =
      std::string(bench::kOutDir) + "/parallel_scaling.json";
  std::ofstream os(path);
  os << "{\n"
     << bench::machine_json_fields()
     << "  \"kernel\": \"array_mc_strikes\",\n"
     << "  \"strikes\": " << cfg.strikes << ",\n"
     << "  \"chunk\": " << cfg.chunk << ",\n"
     << "  \"seed\": " << seed << ",\n"
     << "  \"hardware_threads\": " << exec::hardware_threads() << ",\n"
     << "  \"deterministic_across_thread_counts\": "
     << (all_identical ? "true" : "false") << ",\n"
     << "  \"results\": [\n"
     << rows_json << "\n  ]\n}\n";
  std::cout << "[json] " << path << "\n";
}

/// Observability tax on the hottest loop: the same array-MC strike kernel
/// with finser::obs disabled (the shipped default — every instrumentation
/// site is one relaxed atomic load and a branch) and enabled. The disabled
/// column is the number the <2% budget in docs/observability.md refers to.
void report_obs_overhead() {
  const sram::ArrayLayout layout(9, 9, sram::CellGeometry{});
  const sram::CellSoftErrorModel model = threshold_model(0.8, 0.02);

  core::ArrayMcConfig cfg;
  cfg.strikes = 40000;
  cfg.chunk = 512;
  cfg.threads = 1;  // Single-thread: no pool noise in the comparison.
  const std::uint64_t seed = 20140601;
  core::ArrayMc mc(layout, model, cfg);

  // Median of repeated timed runs per mode, interleaved so slow drift in
  // machine load hits both modes equally.
  constexpr int kReps = 7;
  std::vector<double> off_s, on_s;
  mc.run(phys::Species::kAlpha, 2.0, seed);  // Warm-up.
  for (int rep = 0; rep < kReps; ++rep) {
    for (const bool enabled : {false, true}) {
      obs::set_enabled(enabled);
      const auto start = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(mc.run(phys::Species::kAlpha, 2.0, seed));
      const double s = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - start)
                           .count();
      (enabled ? on_s : off_s).push_back(s);
    }
  }
  obs::set_enabled(false);
  obs::Registry::global().reset();

  const auto median = [](std::vector<double> v) {
    std::sort(v.begin(), v.end());
    return v[v.size() / 2];
  };
  const double off = median(off_s);
  const double on = median(on_s);
  // Baseline: a build with no instrumentation at all is not available from
  // one binary, so "disabled overhead" is reported against the fastest
  // observed disabled run (jitter floor), and enabled against disabled.
  const double fastest_off = *std::min_element(off_s.begin(), off_s.end());
  const double disabled_pct = 100.0 * (off - fastest_off) / fastest_off;
  const double enabled_pct = 100.0 * (on - off) / off;

  util::CsvTable t({"mode", "median_seconds", "strikes_per_s", "overhead_pct"});
  t.add_row({std::string("metrics disabled"), off,
             static_cast<double>(cfg.strikes) / off, disabled_pct});
  t.add_row({std::string("metrics enabled"), on,
             static_cast<double>(cfg.strikes) / on, enabled_pct});
  bench::emit(t, "obs_overhead",
              "finser::obs cost on the array-MC kernel (disabled vs enabled)");

  std::filesystem::create_directories(bench::kOutDir);
  const std::string path = std::string(bench::kOutDir) + "/obs_overhead.json";
  std::ofstream os(path);
  char body[512];
  std::snprintf(body, sizeof body,
                "{\n%s"
                "  \"kernel\": \"array_mc_strikes\",\n"
                "  \"strikes\": %zu,\n"
                "  \"reps\": %d,\n"
                "  \"disabled_median_seconds\": %.6f,\n"
                "  \"enabled_median_seconds\": %.6f,\n"
                "  \"disabled_jitter_pct\": %.3f,\n"
                "  \"enabled_vs_disabled_pct\": %.3f\n"
                "}\n",
                bench::machine_json_fields().c_str(),
                static_cast<std::size_t>(cfg.strikes), kReps, off, on,
                disabled_pct, enabled_pct);
  os << body;
  std::cout << "[json] " << path << "\n";
}

/// Warm-vs-cold campaign through the content-addressed artifact store: the
/// cold pass characterizes the cell and builds every LUT from scratch; the
/// warm pass must load all of it back (0 characterizations) and only pay
/// for I/O + decode. The ratio is the headline number for the caching layer
/// (docs/architecture.md).
void report_artifact_cache() {
  pipeline::CampaignSpec spec;
  spec.name = "bench_artifact_cache";
  spec.artifact_dir = std::string(bench::kOutDir) + "/artifact_cache_store";
  spec.output_dir = "";  // No CSVs: measure compute + cache only.

  // Three scenarios sharing one cell model (same design, different data
  // patterns) — the shape the store is built for.
  core::SerFlowConfig base;
  base.array_rows = 4;
  base.array_cols = 4;
  base.characterization.vdds = {0.8};
  base.characterization.pv_samples_single = 40;
  base.characterization.pair_grid_points = 8;
  base.characterization.triple_grid_points = 6;
  base.characterization.pv_samples_grid = 12;
  base.array_mc.strikes = 4000;
  base.neutron_mc.histories = 4000;
  base.proton_bins = 4;
  base.alpha_bins = 4;
  base.seed = 20140601;
  const sram::DataPattern patterns[] = {sram::DataPattern::kCheckerboard,
                                        sram::DataPattern::kAllOnes,
                                        sram::DataPattern::kAllZeros};
  const char* names[] = {"checkerboard", "ones", "zeros"};
  for (int i = 0; i < 3; ++i) {
    pipeline::ScenarioSpec sc;
    sc.name = names[i];
    sc.species = {"alpha", "proton"};
    sc.flow = base;
    sc.flow.pattern = patterns[i];
    spec.scenarios.push_back(sc);
  }

  std::filesystem::remove_all(spec.artifact_dir);
  obs::Registry::global().reset();
  obs::set_enabled(true);
  const exec::ProgressSink quiet;
  const ckpt::RunOptions run;

  const auto timed_pass = [&](const char* label) {
    const std::uint64_t chars_before =
        obs::Registry::global().counter("pipeline.characterizations").total();
    const auto start = std::chrono::steady_clock::now();
    pipeline::CampaignRunner runner(spec);
    const auto results = runner.run(quiet, run);
    const double seconds =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    const std::uint64_t chars =
        obs::Registry::global().counter("pipeline.characterizations").total() -
        chars_before;
    std::printf("  [%s pass: %.3f s, %llu characterization(s)]\n", label,
                seconds, static_cast<unsigned long long>(chars));
    return std::pair<double, std::uint64_t>{seconds, chars};
  };

  const auto [cold_s, cold_chars] = timed_pass("cold");
  const auto [warm_s, warm_chars] = timed_pass("warm");
  const std::uint64_t hits =
      obs::Registry::global().counter("pipeline.artifact.hits").total();
  obs::set_enabled(false);
  obs::Registry::global().reset();

  const double speedup = warm_s > 0.0 ? cold_s / warm_s : 0.0;
  util::CsvTable t(
      {"pass", "seconds", "characterizations", "speedup_vs_cold"});
  t.add_row({std::string("cold"), cold_s, static_cast<double>(cold_chars),
             1.0});
  t.add_row({std::string("warm"), warm_s, static_cast<double>(warm_chars),
             speedup});
  bench::emit(t, "artifact_cache",
              "3-scenario campaign, cold vs warm artifact store");

  std::filesystem::create_directories(bench::kOutDir);
  const std::string path = std::string(bench::kOutDir) + "/artifact_cache.json";
  std::ofstream os(path);
  char body[512];
  std::snprintf(body, sizeof body,
                "{\n%s"
                "  \"kernel\": \"campaign_artifact_store\",\n"
                "  \"scenarios\": 3,\n"
                "  \"cold_seconds\": %.6f,\n"
                "  \"warm_seconds\": %.6f,\n"
                "  \"warm_speedup\": %.3f,\n"
                "  \"cold_characterizations\": %llu,\n"
                "  \"warm_characterizations\": %llu,\n"
                "  \"warm_artifact_hits\": %llu\n"
                "}\n",
                bench::machine_json_fields().c_str(), cold_s, warm_s, speedup,
                static_cast<unsigned long long>(cold_chars),
                static_cast<unsigned long long>(warm_chars),
                static_cast<unsigned long long>(hits));
  os << body;
  std::cout << "[json] " << path << "\n";
}

/// Compile-once/evaluate-many SPICE kernel: the characterization hot path
/// runs thousands of strike transients per supply voltage, each differing
/// only in rebindable parameters (ΔVt sample, strike charges). This bench
/// compares the historical shape — a fresh reference-engine simulator per
/// PV sample (rebuild netlist + solver scratch every time) — against the
/// compiled engine's rebind-per-sample path, on identical work, and
/// cross-checks that both produce bit-identical outcomes.
void report_spice_kernel() {
  const sram::CellDesign design;
  const double vdd = 0.8;
  constexpr int kSamples = 120;     // PV (ΔVt) samples.
  constexpr int kSimsPerSample = 8; // Charge ladder per sample (~a bisection).

  // Deterministic workload, generated once and replayed by both engines.
  std::vector<sram::DeltaVt> dvts(kSamples);
  std::vector<std::array<double, kSimsPerSample>> charges(kSamples);
  {
    stats::Rng rng(20140602);
    for (int i = 0; i < kSamples; ++i) {
      for (double& v : dvts[static_cast<std::size_t>(i)]) {
        v = rng.normal(0.0, design.sigma_vt);
      }
      for (double& q : charges[static_cast<std::size_t>(i)]) {
        q = rng.uniform(0.02, 0.3);
      }
    }
  }

  const auto run_pass = [&](sram::SpiceEngine engine, bool fresh_per_sample,
                            std::vector<sram::StrikeOutcome>& out) {
    out.clear();
    out.reserve(kSamples * kSimsPerSample);
    sram::StrikeSimulator shared(design, vdd, sram::AccessMode::kRetention,
                                 engine);
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSamples; ++i) {
      std::optional<sram::StrikeSimulator> local;
      if (fresh_per_sample) {
        local.emplace(design, vdd, sram::AccessMode::kRetention, engine);
      }
      sram::StrikeSimulator& sim = fresh_per_sample ? *local : shared;
      for (int s = 0; s < kSimsPerSample; ++s) {
        const double q = charges[static_cast<std::size_t>(i)]
                                [static_cast<std::size_t>(s)];
        out.push_back(sim.simulate(sram::StrikeCharges{q, 0.0, 0.0},
                                   dvts[static_cast<std::size_t>(i)]));
      }
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  // Lane-batched pass: the same workload, rebound lane_width() samples at a
  // time and every charge step of the ladder advanced for the whole lane
  // group in one batched transient — exactly the shape the characterizer
  // drives. The scalar passes are forced to lane width 1 so the comparison
  // is batched-vs-scalar-compiled, not batched-vs-itself.
  const std::size_t lanes = spice::lane_width();
  const auto run_batched = [&](std::vector<sram::StrikeOutcome>& out) {
    out.assign(static_cast<std::size_t>(kSamples * kSimsPerSample),
               sram::StrikeOutcome{});
    sram::StrikeSimulator sim(design, vdd);
    std::vector<sram::StrikeCharges> qs;
    std::vector<sram::DeltaVt> ds;
    std::vector<std::uint8_t> active;
    std::vector<sram::StrikeSimulator::LaneOutcome> res;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kSamples; i += static_cast<int>(lanes)) {
      const std::size_t group =
          std::min(lanes, static_cast<std::size_t>(kSamples - i));
      ds.assign(dvts.begin() + i, dvts.begin() + i + static_cast<int>(group));
      active.assign(group, 1);
      for (int s = 0; s < kSimsPerSample; ++s) {
        qs.clear();
        for (std::size_t g = 0; g < group; ++g) {
          qs.push_back(sram::StrikeCharges{
              charges[static_cast<std::size_t>(i) + g]
                     [static_cast<std::size_t>(s)],
              0.0, 0.0});
        }
        sim.simulate_batch(qs, ds, spice::PulseShape::Kind::kRectangular,
                           active, res);
        for (std::size_t g = 0; g < group; ++g) {
          out[(static_cast<std::size_t>(i) + g) *
                  static_cast<std::size_t>(kSimsPerSample) +
              static_cast<std::size_t>(s)] = res[g].outcome;
        }
      }
    }
    return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                         start)
        .count();
  };

  std::vector<sram::StrikeOutcome> ref_out, hot_out, batch_out;
  // Warm-up (page in the models, spin up allocators), then timed passes.
  // Both timed passes run with observability disabled so neither side pays
  // the counter overhead; the counters come from a separate untimed pass.
  double rebuild_s = 0.0, rebind_s = 0.0;
  {
    // Scalar reference + compiled-rebind baselines at lane width 1.
    spice::set_lane_width(1);
    run_pass(sram::SpiceEngine::kReference, true, ref_out);
    run_pass(sram::SpiceEngine::kCompiled, false, hot_out);
    rebuild_s = run_pass(sram::SpiceEngine::kReference, true, ref_out);
    rebind_s = run_pass(sram::SpiceEngine::kCompiled, false, hot_out);
    spice::set_lane_width(0);
  }
  run_batched(batch_out);  // Warm-up.
  const double batched_s = run_batched(batch_out);

  // Count what the compiled path actually does: solver steps skipped by the
  // steady-state fast-forward and DC hold solves saved by the ΔVt cache.
  obs::Registry::global().reset();
  obs::set_enabled(true);
  run_pass(sram::SpiceEngine::kCompiled, false, hot_out);
  const auto count = [](const char* name) {
    return static_cast<unsigned long long>(
        obs::Registry::global().counter(name).total());
  };
  const unsigned long long tran_steps = count("spice.tran.steps");
  const unsigned long long ff_steps = count("spice.tran.ff_steps");
  const unsigned long long newton_iters = count("spice.tran.newton_iters");
  const unsigned long long dc_reuse = count("sram.strike.dc_reuse");
  // Lane-utilization counters of the batched engine: how full the SIMD lanes
  // ran and how many lane-iterations were masked-off (converged/ragged).
  obs::Registry::global().reset();
  run_batched(batch_out);
  const unsigned long long batch_ticks = count("spice.batch.newton_ticks");
  const unsigned long long lane_active = count("spice.batch.lane_iters_active");
  const unsigned long long lane_masked = count("spice.batch.lane_iters_masked");
  obs::set_enabled(false);
  obs::Registry::global().reset();

  const auto outcomes_equal = [](const std::vector<sram::StrikeOutcome>& a,
                                 const std::vector<sram::StrikeOutcome>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
      if (a[i].flipped != b[i].flipped || a[i].final_q_v != b[i].final_q_v ||
          a[i].final_qb_v != b[i].final_qb_v) {
        return false;
      }
    }
    return true;
  };
  const bool identical = outcomes_equal(ref_out, hot_out);
  const bool identical_batched = outcomes_equal(ref_out, batch_out);

  const double n = static_cast<double>(kSamples * kSimsPerSample);
  const double rebuild_rate = rebuild_s > 0.0 ? n / rebuild_s : 0.0;
  const double rebind_rate = rebind_s > 0.0 ? n / rebind_s : 0.0;
  const double batched_rate = batched_s > 0.0 ? n / batched_s : 0.0;
  const double speedup = rebind_s > 0.0 ? rebuild_s / rebind_s : 0.0;
  const double batched_speedup = batched_s > 0.0 ? rebind_s / batched_s : 0.0;
  const double lane_fraction =
      batch_ticks > 0 ? static_cast<double>(lane_active) /
                            (static_cast<double>(batch_ticks) *
                             static_cast<double>(lanes))
                      : 0.0;

  util::CsvTable t({"path", "seconds", "transients_per_s", "speedup",
                    "identical"});
  t.add_row({std::string("rebuild-per-sample (reference)"), rebuild_s,
             rebuild_rate, 1.0, 1.0});
  t.add_row({std::string("rebind-per-sample (compiled)"), rebind_s,
             rebind_rate, speedup, identical ? 1.0 : 0.0});
  t.add_row({std::string("lane-batched W=") + std::to_string(lanes),
             batched_s, batched_rate,
             batched_s > 0.0 ? rebuild_s / batched_s : 0.0,
             identical_batched ? 1.0 : 0.0});
  bench::emit(t, "spice_kernel",
              "SPICE strike kernel: rebuild vs compiled rebind vs "
              "lane-batched (identical must be 1)");

  std::filesystem::create_directories(bench::kOutDir);
  const std::string path = std::string(bench::kOutDir) + "/spice_kernel.json";
  std::ofstream os(path);
  char body[1280];
  std::snprintf(body, sizeof body,
                "{\n%s"
                "  \"kernel\": \"spice_strike_transient\",\n"
                "  \"pv_samples\": %d,\n"
                "  \"transients_per_sample\": %d,\n"
                "  \"rebuild_seconds\": %.6f,\n"
                "  \"rebind_seconds\": %.6f,\n"
                "  \"batched_seconds\": %.6f,\n"
                "  \"rebuild_transients_per_s\": %.1f,\n"
                "  \"rebind_transients_per_s\": %.1f,\n"
                "  \"batched_transients_per_s\": %.1f,\n"
                "  \"rebind_speedup\": %.3f,\n"
                "  \"batched_speedup_vs_rebind\": %.3f,\n"
                "  \"lane_width\": %zu,\n"
                "  \"bit_identical_outcomes\": %s,\n"
                "  \"bit_identical_batched\": %s,\n"
                "  \"rebind_tran_steps\": %llu,\n"
                "  \"rebind_ff_steps\": %llu,\n"
                "  \"rebind_newton_iters\": %llu,\n"
                "  \"rebind_dc_hold_reuses\": %llu,\n"
                "  \"batch_newton_ticks\": %llu,\n"
                "  \"batch_lane_iters_active\": %llu,\n"
                "  \"batch_lane_iters_masked\": %llu,\n"
                "  \"batch_active_lane_fraction\": %.4f\n"
                "}\n",
                bench::machine_json_fields().c_str(), kSamples,
                kSimsPerSample, rebuild_s, rebind_s, batched_s,
                rebuild_rate, rebind_rate, batched_rate, speedup,
                batched_speedup, lanes, identical ? "true" : "false",
                identical_batched ? "true" : "false", tran_steps, ff_steps,
                newton_iters, dc_reuse, batch_ticks, lane_active, lane_masked,
                lane_fraction);
  os << body;
  std::cout << "[json] " << path << "\n";
}

void report() {
  // Measure the two dominant costs directly and extrapolate the paper-scale
  // campaign (10M strikes, 18 energy points, full characterization).
  util::CsvTable t({"kernel", "per_op_us", "paper_scale_ops", "minutes"});

  {
    const sram::ArrayLayout layout(9, 9, sram::CellGeometry{});
    phys::Transporter tr(layout.fins());
    stats::Rng rng(1);
    const auto start = std::chrono::steady_clock::now();
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
      geom::Ray ray;
      ray.origin = {rng.uniform(0.0, layout.width_nm()),
                    rng.uniform(0.0, layout.height_nm()), 27.0};
      ray.dir = stats::isotropic_hemisphere_down(rng);
      if (ray.dir.z == 0.0) ray.dir.z = -1e-12;
      benchmark::DoNotOptimize(tr.transport(ray, phys::Species::kAlpha, 2.0, rng));
    }
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count() /
                      n;
    t.add_row({std::string("array-MC strike transport"), us, 1e7 * 22,
               us * 1e7 * 22 / 60e6});
  }
  {
    sram::StrikeSimulator sim(sram::CellDesign{}, 0.8);
    const auto start = std::chrono::steady_clock::now();
    const int n = 300;
    for (int i = 0; i < n; ++i) {
      benchmark::DoNotOptimize(sim.simulate(sram::StrikeCharges{0.1, 0, 0}));
    }
    const double us = std::chrono::duration<double, std::micro>(
                          std::chrono::steady_clock::now() - start)
                          .count() /
                      n;
    // Paper-scale characterization: 1000 PV samples x ~12 bisection sims x
    // 3 currents x 5 Vdd + grids.
    const double ops = 1000.0 * 12 * 3 * 5 + 5 * 4000;
    t.add_row({std::string("SPICE strike transient"), us, ops,
               us * ops / 60e6});
  }
  bench::emit(t, "kernel_perf",
              "Runtime budget of the paper-scale campaign on this machine");

  report_spice_kernel();
  report_parallel_scaling();
  report_obs_overhead();
  report_artifact_cache();
}

void bm_lu_solve_10x10(benchmark::State& state) {
  for (auto _ : state) {
    spice::Mna m(10);
    for (std::size_t i = 0; i < 10; ++i) {
      for (std::size_t j = 0; j < 10; ++j) {
        m.add(i, j, i == j ? 3.0 : 0.1 * static_cast<double>((i * 7 + j) % 5));
      }
      m.add_rhs(i, 1.0);
    }
    benchmark::DoNotOptimize(m.solve());
  }
}
BENCHMARK(bm_lu_solve_10x10);

void bm_finfet_eval(benchmark::State& state) {
  double vg = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        spice::evaluate_finfet(spice::default_nfet(), 0.8, vg, 0.0, 0.0, 1.0));
    vg = vg < 0.8 ? vg + 1e-3 : 0.0;
  }
}
BENCHMARK(bm_finfet_eval);

void bm_dc_operating_point(benchmark::State& state) {
  sram::StrikeSimulator sim(sram::CellDesign{}, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.hold_state());
  }
}
BENCHMARK(bm_dc_operating_point)->Unit(benchmark::kMicrosecond);

void bm_transport_single(benchmark::State& state) {
  const sram::ArrayLayout layout(9, 9, sram::CellGeometry{});
  phys::Transporter tr(layout.fins());
  stats::Rng rng(2);
  for (auto _ : state) {
    geom::Ray ray;
    ray.origin = {rng.uniform(0.0, layout.width_nm()),
                  rng.uniform(0.0, layout.height_nm()), 27.0};
    ray.dir = stats::isotropic_hemisphere_down(rng);
    if (ray.dir.z == 0.0) ray.dir.z = -1e-12;
    benchmark::DoNotOptimize(tr.transport(ray, phys::Species::kProton, 1.0, rng));
  }
}
BENCHMARK(bm_transport_single);

}  // namespace

FINSER_BENCH_MAIN(report)
