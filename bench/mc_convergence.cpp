/// \file mc_convergence.cpp
/// \brief Statistical quality control of the array Monte Carlo: the POF
/// estimate's run-to-run spread must contract as 1/√N (unbiased i.i.d.
/// estimator), the reported standard error must track the observed spread,
/// and the variance-reduced samplers (importance mixture over the
/// sensitive-fin footprints, optionally Sobol-driven) must sit well below
/// the uniform curve at the same strike budget. This is the evidence behind
/// EXPERIMENTS.md's error bars and behind the `--ci-target` guidance in
/// docs/statistics.md: the headline variance-reduction factor and the
/// matched-half-width strike budget are written to
/// bench_out/mc_convergence.json.
/// Micro-benchmark: strike throughput, uniform vs importance sampling.

#include <cmath>
#include <fstream>

#include "bench_common.hpp"
#include "finser/stats/summary.hpp"
#include "finser/stats/vr.hpp"

namespace {

using namespace finser;

constexpr std::uint64_t kSeeds = 12;

/// Per-sampler replicate statistics at one strike budget.
struct Arm {
  stats::RunningStats pof;    ///< POF_tot at 0.7 V / with-PV over seeds.
  stats::RunningStats se;     ///< Reported standard error over seeds.
  stats::RunningStats ess;    ///< Effective sample size over seeds.
  stats::RunningStats relhw;  ///< Max-over-(vdd, mode) rel. half-width.
};

/// The stopping rule's convergence metric: worst relative CI half-width of
/// POF_tot over every (supply, PV-mode) channel of the result.
double max_rel_halfwidth(const core::ArrayMcResult& res) {
  double h = 0.0;
  for (const auto& per_vdd : res.est) {
    for (const auto& e : per_vdd) {
      h = std::max(h, stats::relative_halfwidth(e.tot, e.tot_se));
    }
  }
  return h;
}

Arm run_arm(const core::SerFlow& flow, const sram::CellSoftErrorModel& model,
            const core::ArrayMcConfig& mc_cfg) {
  core::ArrayMc mc(flow.layout(), model, mc_cfg);
  Arm arm;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto res = mc.run(phys::Species::kAlpha, 1.5, seed);
    const auto& est = res.est[0][core::kModeWithPv];
    arm.pof.add(est.tot);
    arm.se.add(est.tot_se);
    arm.ess.add(est.ess);
    arm.relhw.add(max_rel_halfwidth(res));
  }
  return arm;
}

void report() {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  cfg.array_rows = 5;
  cfg.array_cols = 5;
  core::SerFlow flow(cfg);
  const auto& model = flow.cell_model(bench::progress_printer());

  // Part A — run-to-run spread at a matched strike budget, three samplers.
  // variance_ratio_vs_uniform uses the reported SE (calibrated against the
  // observed spread by tests/test_stats_variance_reduction.cpp, and far more
  // stable than a 12-replicate spread ratio); the observed spread is printed
  // alongside so the two can be cross-checked.
  util::CsvTable t({"strikes", "sampler", "mean_pof", "observed_spread",
                    "reported_se", "spread_x_sqrtN", "ess",
                    "variance_ratio_vs_uniform"});
  struct Sampler {
    const char* name;
    core::SourcePositionSampling position;
    stats::QmcMode qmc;
  };
  const Sampler samplers[] = {
      {"uniform", core::SourcePositionSampling::kUniform,
       stats::QmcMode::kNone},
      {"importance", core::SourcePositionSampling::kImportance,
       stats::QmcMode::kNone},
      {"importance_sobol", core::SourcePositionSampling::kImportance,
       stats::QmcMode::kSobol},
  };
  const std::size_t budget = 32000;
  double headline_ratio = 0.0;         // SE-based, largest budget.
  double headline_spread_ratio = 0.0;  // Spread-based corroboration.
  double uniform_relhw_at_budget = 0.0;
  for (std::size_t strikes : {2000u, 8000u, 32000u}) {
    double uniform_se = 0.0;
    double uniform_spread = 0.0;
    for (const Sampler& s : samplers) {
      core::ArrayMcConfig mc_cfg = cfg.array_mc;
      mc_cfg.strikes = strikes;
      mc_cfg.position = s.position;
      mc_cfg.sampling.qmc = s.qmc;
      const Arm arm = run_arm(flow, model, mc_cfg);
      if (s.position == core::SourcePositionSampling::kUniform) {
        uniform_se = arm.se.mean();
        uniform_spread = arm.pof.stddev();
        if (strikes == budget) uniform_relhw_at_budget = arm.relhw.mean();
      }
      const double se_ratio =
          arm.se.mean() > 0.0 ? uniform_se / arm.se.mean() : 0.0;
      const double var_ratio = se_ratio * se_ratio;
      if (s.position == core::SourcePositionSampling::kImportance &&
          s.qmc == stats::QmcMode::kNone && strikes == budget) {
        headline_ratio = var_ratio;
        const double sr = arm.pof.stddev() > 0.0
                              ? uniform_spread / arm.pof.stddev()
                              : 0.0;
        headline_spread_ratio = sr * sr;
      }
      t.add_row({static_cast<double>(strikes), std::string(s.name),
                 arm.pof.mean(), arm.pof.stddev(), arm.se.mean(),
                 arm.pof.stddev() * std::sqrt(static_cast<double>(strikes)),
                 arm.ess.mean(), var_ratio});
    }
  }
  bench::emit(t, "mc_convergence",
              "MC quality control: spread vs strike count and sampler "
              "(alpha, 1.5 MeV, 0.7 V; spread*sqrt(N) ~constant per sampler; "
              "variance ratio = (SE_uniform / SE_sampler)^2)");

  // Part B — matched half-width: let the CI-driven stopper run the
  // importance sampler to the half-width the uniform sampler reaches only
  // at the full budget, and count the strikes it actually needed. chunk 512
  // + min_chunks 2 give the geometric stopping schedule fine enough
  // granularity to see sub-1/5 budgets.
  core::ArrayMcConfig ci_cfg = cfg.array_mc;
  ci_cfg.strikes = budget;
  ci_cfg.chunk = 512;
  ci_cfg.position = core::SourcePositionSampling::kImportance;
  ci_cfg.ci.target = uniform_relhw_at_budget;
  ci_cfg.ci.min_chunks = 2;
  core::ArrayMc ci_mc(flow.layout(), model, ci_cfg);
  stats::RunningStats used, achieved;
  for (std::uint64_t seed = 1; seed <= kSeeds; ++seed) {
    const auto res = ci_mc.run(phys::Species::kAlpha, 1.5, seed);
    used.add(static_cast<double>(res.units_used));
    achieved.add(max_rel_halfwidth(res));
  }
  const double budget_ratio = used.mean() / static_cast<double>(budget);
  std::cout << "\n=== Matched half-width (--ci-target "
            << uniform_relhw_at_budget << ") ===\n"
            << "uniform needs " << budget << " strikes; importance stops at "
            << used.mean() << " (" << budget_ratio
            << " of the budget), achieved rel. half-width " << achieved.mean()
            << "\n";

  std::ofstream json(std::string(bench::kOutDir) + "/mc_convergence.json");
  json << "{\n"
       << bench::machine_json_fields()
       << "  \"budget_strikes\": " << budget << ",\n"
       << "  \"variance_ratio_importance_vs_uniform\": " << headline_ratio
       << ",\n"
       << "  \"variance_ratio_observed_spread\": " << headline_spread_ratio
       << ",\n"
       << "  \"ci_target\": " << uniform_relhw_at_budget << ",\n"
       << "  \"importance_strikes_at_matched_halfwidth\": " << used.mean()
       << ",\n"
       << "  \"strike_budget_ratio\": " << budget_ratio << ",\n"
       << "  \"achieved_rel_halfwidth\": " << achieved.mean() << "\n"
       << "}\n";
  std::cout << "[json] " << bench::kOutDir << "/mc_convergence.json\n";
}

void bm_default_throughput(benchmark::State& state) {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  cfg.array_rows = 5;
  cfg.array_cols = 5;
  core::SerFlow flow(cfg);
  const auto& model = flow.cell_model();
  core::ArrayMcConfig mc_cfg = cfg.array_mc;
  mc_cfg.strikes = 5000;
  core::ArrayMc mc(flow.layout(), model, mc_cfg);
  std::uint64_t seed = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.run(phys::Species::kAlpha, 1.5, seed++));
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(bm_default_throughput)->Unit(benchmark::kMillisecond);

void bm_importance_throughput(benchmark::State& state) {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  cfg.array_rows = 5;
  cfg.array_cols = 5;
  core::SerFlow flow(cfg);
  const auto& model = flow.cell_model();
  core::ArrayMcConfig mc_cfg = cfg.array_mc;
  mc_cfg.strikes = 5000;
  mc_cfg.position = core::SourcePositionSampling::kImportance;
  core::ArrayMc mc(flow.layout(), model, mc_cfg);
  std::uint64_t seed = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.run(phys::Species::kAlpha, 1.5, seed++));
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(bm_importance_throughput)->Unit(benchmark::kMillisecond);

}  // namespace

FINSER_BENCH_MAIN(report)
