/// \file mc_convergence.cpp
/// \brief Statistical quality control of the array Monte Carlo: the POF
/// estimate's run-to-run spread must contract as 1/√N (unbiased i.i.d.
/// estimator), the reported standard error must track the observed spread,
/// and stratified position sampling must sit below the uniform curve. This
/// is the evidence behind EXPERIMENTS.md's error bars and behind trusting
/// FINSER_MC_SCALE to trade time for precision linearly.
/// Micro-benchmark: strike throughput at the default configuration.

#include <cmath>

#include "bench_common.hpp"
#include "finser/stats/summary.hpp"

namespace {

using namespace finser;

void report() {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  cfg.array_rows = 5;
  cfg.array_cols = 5;
  core::SerFlow flow(cfg);
  const auto& model = flow.cell_model(bench::progress_printer());

  util::CsvTable t({"strikes", "mean_pof", "observed_spread",
                    "reported_se", "spread_x_sqrtN"});
  for (std::size_t strikes : {2000u, 8000u, 32000u}) {
    core::ArrayMcConfig mc_cfg = cfg.array_mc;
    mc_cfg.strikes = strikes;
    core::ArrayMc mc(flow.layout(), model, mc_cfg);
    stats::RunningStats runs;
    double reported_se = 0.0;
    for (std::uint64_t seed = 1; seed <= 12; ++seed) {
      const auto est =
          mc.run(phys::Species::kAlpha, 1.5, seed).est[0][core::kModeWithPv];
      runs.add(est.tot);
      reported_se = est.tot_se;
    }
    t.add_row({static_cast<double>(strikes), runs.mean(), runs.stddev(),
               reported_se,
               runs.stddev() * std::sqrt(static_cast<double>(strikes))});
  }
  bench::emit(t, "mc_convergence",
              "MC quality control: spread vs strike count (alpha, 1.5 MeV, "
              "0.7 V; spread*sqrt(N) should be ~constant)");
}

void bm_default_throughput(benchmark::State& state) {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  cfg.array_rows = 5;
  cfg.array_cols = 5;
  core::SerFlow flow(cfg);
  const auto& model = flow.cell_model();
  core::ArrayMcConfig mc_cfg = cfg.array_mc;
  mc_cfg.strikes = 5000;
  core::ArrayMc mc(flow.layout(), model, mc_cfg);
  std::uint64_t seed = 4;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.run(phys::Species::kAlpha, 1.5, seed++));
  }
  state.SetItemsProcessed(state.iterations() * 5000);
}
BENCHMARK(bm_default_throughput)->Unit(benchmark::kMillisecond);

}  // namespace

FINSER_BENCH_MAIN(report)
