/// \file futurework_neutron.cpp
/// \brief The paper's Sec.-7 future work, implemented: neutron-induced
/// (indirect-ionization) SER of the 9×9 array, side by side with the
/// paper's alpha and proton results. Forced-interaction Monte Carlo over
/// the sea-level neutron spectrum; secondaries (Si/Mg recoils, alphas,
/// protons) transported with the standard charged-particle machinery.
/// Micro-benchmarks: interaction sampling and the weighted history loop.

#include "bench_common.hpp"

namespace {

using namespace finser;

void report() {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  cfg.neutron_mc.histories = cfg.array_mc.strikes;
  core::SerFlow flow(cfg);
  flow.cell_model(bench::progress_printer());

  const auto rn = flow.sweep(env::sea_level_neutrons(), bench::progress_printer());
  const auto ra = flow.sweep(env::package_alphas());
  const auto rp = flow.sweep(env::sea_level_protons());

  util::CsvTable t({"vdd_v", "neutron_fit", "alpha_fit", "proton_fit",
                    "neutron_over_alpha", "neutron_mbu_seu_pct"});
  for (std::size_t v = 0; v < rn.vdds.size(); ++v) {
    const auto& fn = rn.fit[v][core::kModeWithPv];
    const auto& fa = ra.fit[v][core::kModeWithPv];
    const auto& fp = rp.fit[v][core::kModeWithPv];
    t.add_row({rn.vdds[v], fn.fit_tot, fa.fit_tot, fp.fit_tot,
               fa.fit_tot > 0.0 ? fn.fit_tot / fa.fit_tot : 0.0,
               fn.fit_seu > 0.0 ? 100.0 * fn.fit_mbu / fn.fit_seu : 0.0});
  }
  bench::emit(t, "futurework_neutron_ser",
              "Future work (paper Sec. 7): neutron vs alpha vs proton SER");

  // POF(E) of the neutron response: which energies matter.
  util::CsvTable e_table({"energy_mev", "pof_per_neutron_vdd0.7",
                          "integral_flux_per_cm2_s"});
  for (std::size_t b = 0; b < rn.bins.size(); ++b) {
    e_table.add_row({rn.bins[b].e_rep_mev,
                     rn.per_bin[b].est[0][core::kModeWithPv].tot,
                     rn.bins[b].integral_flux_per_cm2_s});
  }
  bench::emit(e_table, "futurework_neutron_pof",
              "Neutron POF vs energy (per incident neutron, Vdd = 0.7 V)");
}

void bm_interaction_sample(benchmark::State& state) {
  phys::NeutronInteractionModel model;
  stats::Rng rng(1);
  const geom::Vec3 dir{0.0, 0.0, -1.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.sample(14.0, dir, rng));
  }
}
BENCHMARK(bm_interaction_sample);

void bm_neutron_histories(benchmark::State& state) {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  core::SerFlow flow(cfg);
  const auto& model = flow.cell_model();
  core::NeutronMcConfig mc_cfg = cfg.neutron_mc;
  mc_cfg.histories = 2000;
  core::NeutronArrayMc mc(flow.layout(), model, mc_cfg);
  std::uint64_t seed = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.run(14.0, seed++));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(bm_neutron_histories)->Unit(benchmark::kMillisecond);

}  // namespace

FINSER_BENCH_MAIN(report)
