/// \file extension_8t_cell.cpp
/// \brief Architectural mitigation study: the 8T read-decoupled cell vs the
/// paper's 6T cell. The access-mode ablation shows the 6T cell loses ~20 %
/// of its critical charge while being read; the 8T topology removes that
/// vulnerability at an area cost. This bench quantifies both columns a
/// memory architect weighs: retention and read-access critical charge for
/// both topologies across the Vdd sweep, plus read SNM.
/// Micro-benchmark: 8T strike transient (10 transistors vs 8).

#include "bench_common.hpp"
#include "finser/sram/characterize.hpp"
#include "finser/sram/snm.hpp"

namespace {

using namespace finser;
using sram::AccessMode;
using sram::CellDesign;
using sram::CellTopology;

double qcrit(const CellDesign& d, double vdd, AccessMode mode) {
  sram::StrikeSimulator sim(d, vdd, mode);
  return sram::bisect_critical_scale(sim, sram::StrikeCharges{1, 0, 0},
                                     sram::DeltaVt{}, 0.6, 1e-4,
                                     spice::PulseShape::Kind::kRectangular);
}

void report() {
  CellDesign d6;
  CellDesign d8;
  d8.topology = CellTopology::k8T;

  util::CsvTable t({"vdd_v", "q6_hold_fc", "q6_read_fc", "q8_hold_fc",
                    "q8_read_fc", "read_penalty_6t_pct", "read_penalty_8t_pct"});
  for (double vdd : {0.7, 0.8, 0.9, 1.0, 1.1}) {
    const double q6h = qcrit(d6, vdd, AccessMode::kRetention);
    const double q6r = qcrit(d6, vdd, AccessMode::kRead);
    const double q8h = qcrit(d8, vdd, AccessMode::kRetention);
    const double q8r = qcrit(d8, vdd, AccessMode::kRead);
    t.add_row({vdd, q6h, q6r, q8h, q8r, 100.0 * (q6h - q6r) / q6h,
               100.0 * (q8h - q8r) / q8h});
  }
  bench::emit(t, "extension_8t_cell",
              "Extension: 6T vs 8T critical charge, retention and read");
}

void bm_8t_strike(benchmark::State& state) {
  CellDesign d8;
  d8.topology = CellTopology::k8T;
  sram::StrikeSimulator sim(d8, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate(sram::StrikeCharges{0.12, 0, 0}));
  }
}
BENCHMARK(bm_8t_strike)->Unit(benchmark::kMicrosecond);

}  // namespace

FINSER_BENCH_MAIN(report)
