/// \file fig11_process_variation.cpp
/// \brief Reproduces paper Fig. 11: alpha-induced SER with and without
/// threshold-voltage process variation versus supply voltage. The paper's
/// claim: neglecting variation *underestimates* SER (by up to 45 % in their
/// setup). finser reproduces the sign and Vdd trend; see EXPERIMENTS.md for
/// the magnitude discussion and the sigma-Vt ablation that maps out when
/// the gap grows. Micro-benchmark: POF-table lookups (PV vs nominal paths).

#include "bench_common.hpp"

namespace {

using namespace finser;

void report() {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  core::SerFlow flow(cfg);
  flow.cell_model(bench::progress_printer());

  const auto ra = flow.sweep(env::package_alphas(), bench::progress_printer());

  const double ref = ra.fit.back()[core::kModeWithPv].fit_tot;
  const double norm = ref > 0.0 ? ref : 1.0;

  util::CsvTable t({"vdd_v", "ser_with_pv_norm", "ser_no_pv_norm",
                    "underestimation_pct", "ser_with_pv_fit", "ser_no_pv_fit"});
  for (std::size_t v = 0; v < ra.vdds.size(); ++v) {
    const double with_pv = ra.fit[v][core::kModeWithPv].fit_tot;
    const double no_pv = ra.fit[v][core::kModeNominal].fit_tot;
    t.add_row({ra.vdds[v], with_pv / norm, no_pv / norm,
               no_pv > 0.0 ? 100.0 * (with_pv - no_pv) / no_pv : 0.0, with_pv,
               no_pv});
  }
  bench::emit(t, "fig11_process_variation",
              "Fig. 11: alpha SER, considering vs neglecting process variation");
}

void bm_pof_lookup_pv(benchmark::State& state) {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  core::SerFlow flow(cfg);
  const auto& table = flow.cell_model().at_vdd(0.8);
  double q = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.pof(sram::StrikeCharges{q, 0.0, 0.0}, true));
    q = q < 0.4 ? q + 1e-3 : 0.0;
  }
}
BENCHMARK(bm_pof_lookup_pv);

void bm_pof_lookup_pair(benchmark::State& state) {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  core::SerFlow flow(cfg);
  const auto& table = flow.cell_model().at_vdd(0.8);
  double q = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(table.pof(sram::StrikeCharges{q, 0.2 - q, 0.0}, true));
    q = q < 0.2 ? q + 1e-3 : 0.0;
  }
}
BENCHMARK(bm_pof_lookup_pair);

}  // namespace

FINSER_BENCH_MAIN(report)
