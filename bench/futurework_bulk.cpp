/// \file futurework_bulk.cpp
/// \brief The paper's second future-work axis ("we plan to extend this
/// analysis for other FinFET topologies"): bulk FinFETs vs the paper's SOI.
/// Bulk devices have no buried oxide, so charge deposited in the substrate
/// under the drain junction is partially collected (funneling + diffusion,
/// modeled as depth-tiered collection volumes). Expected and reproduced:
/// bulk SER is a multiple of SOI SER and its MBU share rises (deep tracks
/// feed several cells at once) — the quantitative version of the paper's
/// motivation for studying SOI. Micro-benchmark: bulk-layout ray queries
/// (4x the box count of SOI).

#include "bench_common.hpp"
#include "finser/geom/box_set.hpp"
#include "finser/stats/direction.hpp"

namespace {

using namespace finser;

void report() {
  util::CsvTable t({"technology", "vdd_v", "alpha_fit", "alpha_mbu_seu_pct",
                    "proton_fit"});
  double soi_ref_07 = 0.0, bulk_ref_07 = 0.0;
  for (auto [label, tech] :
       {std::pair{"SOI", sram::TechnologyKind::kSoi},
        std::pair{"bulk", sram::TechnologyKind::kBulk}}) {
    core::SerFlowConfig cfg = bench::paper_flow_config();
    cfg.cell_geometry.technology = tech;
    // Separate LUT cache per technology is unnecessary (the cell electrical
    // model is shared); the default cache applies.
    core::SerFlow flow(cfg);
    flow.cell_model(bench::progress_printer());
    const auto ra = flow.sweep(env::package_alphas());
    const auto rp = flow.sweep(env::sea_level_protons());
    for (std::size_t v = 0; v < ra.vdds.size(); ++v) {
      const auto& fa = ra.fit[v][core::kModeWithPv];
      const auto& fp = rp.fit[v][core::kModeWithPv];
      t.add_row({std::string(label), ra.vdds[v], fa.fit_tot,
                 fa.fit_seu > 0.0 ? 100.0 * fa.fit_mbu / fa.fit_seu : 0.0,
                 fp.fit_tot});
      if (v == 0) {
        (tech == sram::TechnologyKind::kSoi ? soi_ref_07 : bulk_ref_07) =
            fa.fit_tot;
      }
    }
  }
  bench::emit(t, "futurework_bulk_vs_soi",
              "Future work (paper Sec. 2): bulk vs SOI FinFET SER");
  if (soi_ref_07 > 0.0) {
    std::printf("bulk/SOI alpha SER ratio @ 0.7 V: %.2f\n",
                bulk_ref_07 / soi_ref_07);
  }
}

void bm_bulk_ray_query(benchmark::State& state) {
  sram::CellGeometry g;
  g.technology = sram::TechnologyKind::kBulk;
  const sram::ArrayLayout layout(9, 9, g);
  geom::UniformGrid grid(layout.fins());
  stats::Rng rng(5);
  std::vector<geom::BoxHit> hits;
  for (auto _ : state) {
    geom::Ray ray;
    ray.origin = {rng.uniform(0.0, layout.width_nm()),
                  rng.uniform(0.0, layout.height_nm()), 60.0};
    ray.dir = stats::isotropic_hemisphere_down(rng);
    grid.query(ray, hits);
    benchmark::DoNotOptimize(hits.size());
  }
}
BENCHMARK(bm_bulk_ray_query);

}  // namespace

FINSER_BENCH_MAIN(report)
