#pragma once
/// \file bench_common.hpp
/// \brief Shared scaffolding of the figure-reproduction bench harness.
///
/// Every binary under bench/ reproduces one table/figure of the paper:
/// it (1) runs the experiment at bench fidelity (scaled by FINSER_MC_SCALE),
/// (2) prints the series to stdout in the same rows the paper plots,
/// (3) writes a CSV under bench_out/ for EXPERIMENTS.md, and then
/// (4) runs google-benchmark micro-benchmarks of the kernel it exercises.
///
/// The expensive POF-LUT characterization is cached in
/// bench_out/pof_luts.bin and shared by every binary (same fingerprint).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "finser/core/ser_flow.hpp"
#include "finser/exec/progress.hpp"
#include "finser/util/csv.hpp"

namespace finser::bench {

/// Output directory of the reproduction CSVs.
inline const char* kOutDir = "bench_out";

/// The paper's experimental setup (Sec. 6): 9×9 array, Vdd 0.7-1.1 V,
/// 14 nm SOI FinFET cell, checkerboard data. Monte-Carlo sizes are the
/// bench defaults (scaled by FINSER_MC_SCALE); the paper used 10M strikes
/// and 1000 PV samples — set FINSER_MC_SCALE accordingly to match.
inline core::SerFlowConfig paper_flow_config() {
  core::SerFlowConfig cfg;
  cfg.array_rows = 9;
  cfg.array_cols = 9;
  cfg.characterization.vdds = {0.7, 0.8, 0.9, 1.0, 1.1};
  cfg.characterization.pv_samples_single = 200;
  cfg.characterization.pv_samples_grid = 48;
  cfg.array_mc.strikes = 60000;
  cfg.proton_bins = 12;
  cfg.alpha_bins = 10;
  cfg.lut_cache_path = std::string(kOutDir) + "/pof_luts.bin";
  cfg.seed = 20140601;  // DAC'14 conference date.
  core::apply_mc_scale(cfg, core::mc_scale_from_env());
  return cfg;
}

/// Normalize a series to its maximum (the paper reports normalized data).
inline std::vector<double> normalized(std::vector<double> v) {
  double m = 0.0;
  for (double x : v) m = std::max(m, x);
  if (m > 0.0) {
    for (double& x : v) x /= m;
  }
  return v;
}

/// Print the table and write the CSV artifact.
inline void emit(const util::CsvTable& table, const std::string& name,
                 const std::string& caption) {
  std::cout << "\n=== " << caption << " ===\n";
  table.write_pretty(std::cout);
  const std::string path = std::string(kOutDir) + "/" + name + ".csv";
  table.write_csv_file(path);
  std::cout << "[csv] " << path << "\n";
}

/// Machine-context fields for the bench_out/*.json reports. Benchmark
/// numbers are only interpretable against the machine that produced them,
/// so every report records the hardware thread count and the 1-minute load
/// average at emission time (how contended the box already was). Each line
/// is indented by \p indent and ends with ",\n" so the result splices
/// directly after a report's opening "{\n". loadavg is -1 where the
/// platform cannot report it.
inline std::string machine_json_fields(const char* indent = "  ") {
  double load1 = -1.0;
#if defined(__unix__) || defined(__APPLE__)
  double avg[1] = {0.0};
  if (::getloadavg(avg, 1) == 1) load1 = avg[0];
#endif
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "%s\"hardware_concurrency\": %u,\n"
                "%s\"loadavg_1min\": %.2f,\n",
                indent, std::thread::hardware_concurrency(), indent, load1);
  return buf;
}

/// Progress printer for long characterizations (rate-limited sink).
inline exec::ProgressSink progress_printer() {
  return exec::ProgressSink(
      [](const std::string& msg) { std::cout << "  [" << msg << "]\n"; });
}

}  // namespace finser::bench

/// Standard bench main: run the figure reproduction, then micro-benchmarks.
#define FINSER_BENCH_MAIN(report_fn)                              \
  int main(int argc, char** argv) {                               \
    report_fn();                                                  \
    ::benchmark::Initialize(&argc, argv);                         \
    if (::benchmark::ReportUnrecognizedArguments(argc, argv)) {   \
      return 1;                                                   \
    }                                                             \
    ::benchmark::RunSpecifiedBenchmarks();                        \
    ::benchmark::Shutdown();                                      \
    return 0;                                                     \
  }
