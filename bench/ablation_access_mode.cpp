/// \file ablation_access_mode.cpp
/// \brief Extension ablation: the paper characterizes the *retention* state
/// (wordline low); during a read access the cell sits at its read-disturb
/// point and is strictly weaker. This bench quantifies the gap — critical
/// charge and static noise margin, retention vs read, across the Vdd sweep —
/// the correction factor an SER budget needs for the fraction of time a row
/// is being accessed. Micro-benchmark: SNM butterfly extraction cost.

#include "bench_common.hpp"
#include "finser/sram/characterize.hpp"
#include "finser/sram/snm.hpp"

namespace {

using namespace finser;
using sram::AccessMode;
using sram::CellDesign;
using sram::StrikeCharges;

double qcrit(double vdd, AccessMode mode) {
  sram::StrikeSimulator sim(CellDesign{}, vdd, mode);
  return sram::bisect_critical_scale(sim, StrikeCharges{1, 0, 0},
                                     sram::DeltaVt{}, 0.6, 1e-4,
                                     spice::PulseShape::Kind::kRectangular);
}

void report() {
  util::CsvTable t({"vdd_v", "qcrit_hold_fc", "qcrit_read_fc", "qcrit_ratio",
                    "snm_hold_mv", "snm_read_mv"});
  for (double vdd : {0.7, 0.8, 0.9, 1.0, 1.1}) {
    const double qh = qcrit(vdd, AccessMode::kRetention);
    const double qr = qcrit(vdd, AccessMode::kRead);
    const auto sh = sram::static_noise_margin(CellDesign{}, vdd);
    const auto sr =
        sram::static_noise_margin(CellDesign{}, vdd, AccessMode::kRead);
    t.add_row({vdd, qh, qr, qh > 0.0 ? qr / qh : 0.0, 1e3 * sh.snm_v,
               1e3 * sr.snm_v});
  }
  bench::emit(t, "ablation_access_mode",
              "Extension: retention vs read-access robustness");
}

void bm_snm_extraction(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        sram::static_noise_margin(CellDesign{}, 0.8));
  }
}
BENCHMARK(bm_snm_extraction)->Unit(benchmark::kMillisecond);

}  // namespace

FINSER_BENCH_MAIN(report)
