/// \file fig2_spectra.cpp
/// \brief Reproduces paper Fig. 2: (a) the sea-level proton differential
/// spectrum and (b) the package alpha emission spectrum normalized to
/// 0.001 α/(cm²·h). Micro-benchmarks: spectrum interpolation, integration
/// and inverse-CDF sampling throughput.

#include "bench_common.hpp"
#include "finser/env/spectrum.hpp"
#include "finser/stats/rng.hpp"

namespace {

using namespace finser;

void report() {
  const env::Spectrum protons = env::sea_level_protons();
  const env::Spectrum alphas = env::package_alphas();

  {
    util::CsvTable t({"energy_mev", "proton_flux_per_cm2_s_mev"});
    for (double e = 0.1; e <= 1.01e7; e *= 2.0) {
      t.add_row({e, protons.differential(e)});
    }
    bench::emit(t, "fig2a_proton_spectrum",
                "Fig. 2a: sea-level proton differential spectrum");
  }
  {
    util::CsvTable t({"energy_mev", "alpha_flux_per_cm2_s_mev"});
    for (double e = 0.5; e <= 10.001; e += 0.5) {
      t.add_row({e, alphas.differential(e)});
    }
    bench::emit(t, "fig2b_alpha_spectrum",
                "Fig. 2b: package alpha emission spectrum (0.001 a/cm^2/h)");
  }
  {
    util::CsvTable t({"quantity", "value"});
    t.add_row({std::string("alpha emission [1/cm^2/h]"),
               alphas.total_flux() * 3600.0});
    t.add_row({std::string("proton integral flux 0.1-100 MeV [1/cm^2/h]"),
               protons.integral_flux(0.1, 100.0) * 3600.0});
    t.add_row({std::string("proton/alpha flux ratio (direct-ionization band)"),
               protons.integral_flux(0.1, 100.0) / alphas.total_flux()});
    bench::emit(t, "fig2_integral_fluxes", "Fig. 2: integral fluxes");
  }
}

void bm_differential(benchmark::State& state) {
  const env::Spectrum p = env::sea_level_protons();
  double e = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.differential(e));
    e = e < 1e6 ? e * 1.1 : 0.1;
  }
}
BENCHMARK(bm_differential);

void bm_integral_flux(benchmark::State& state) {
  const env::Spectrum p = env::sea_level_protons();
  for (auto _ : state) {
    benchmark::DoNotOptimize(p.integral_flux(0.1, 100.0));
  }
}
BENCHMARK(bm_integral_flux);

void bm_sample_energy(benchmark::State& state) {
  const env::Spectrum a = env::package_alphas();
  finser::stats::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.sample_energy(rng));
  }
}
BENCHMARK(bm_sample_energy);

}  // namespace

FINSER_BENCH_MAIN(report)
