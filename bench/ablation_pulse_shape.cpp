/// \file ablation_pulse_shape.cpp
/// \brief Reproduces the paper's Sec.-4 validation experiment: the cell POF
/// depends on the *charge* of the parasitic current pulse, not its width or
/// shape. We bisect the critical charge under rectangular and triangular
/// pulses at widths from 0.5x to 8x the transit time — the paper's LUT
/// design (charge-keyed) is sound iff these agree.
/// Micro-benchmark: strike-transient throughput.

#include "bench_common.hpp"
#include "finser/sram/characterize.hpp"

namespace {

using namespace finser;

double qcrit(sram::StrikeSimulator& sim, spice::PulseShape::Kind kind,
             double width_scale) {
  sim.set_pulse_width_scale(width_scale);
  return sram::bisect_critical_scale(sim, sram::StrikeCharges{1, 0, 0},
                                     sram::DeltaVt{}, 0.4, 1e-4, kind);
}

void report() {
  util::CsvTable t({"vdd_v", "width_over_tau", "qcrit_rect_fc", "qcrit_tri_fc",
                    "rect_vs_tau1_pct", "tri_vs_rect_pct"});
  for (double vdd : {0.7, 0.9, 1.1}) {
    sram::StrikeSimulator sim(sram::CellDesign{}, vdd);
    const double ref = qcrit(sim, spice::PulseShape::Kind::kRectangular, 1.0);
    for (double ws : {0.5, 1.0, 2.0, 4.0, 8.0}) {
      const double r = qcrit(sim, spice::PulseShape::Kind::kRectangular, ws);
      const double tri = qcrit(sim, spice::PulseShape::Kind::kTriangular, ws);
      t.add_row({vdd, ws, r, tri, 100.0 * (r - ref) / ref,
                 100.0 * (tri - r) / r});
    }
  }
  bench::emit(t, "ablation_pulse_shape",
              "Sec. 4 claim: critical charge vs pulse width and shape");
}

void bm_strike_transient(benchmark::State& state) {
  sram::StrikeSimulator sim(sram::CellDesign{}, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.simulate(sram::StrikeCharges{0.1, 0.0, 0.0}));
  }
}
BENCHMARK(bm_strike_transient)->Unit(benchmark::kMicrosecond);

void bm_hold_solve(benchmark::State& state) {
  sram::StrikeSimulator sim(sram::CellDesign{}, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sim.hold_state());
  }
}
BENCHMARK(bm_hold_solve)->Unit(benchmark::kMicrosecond);

}  // namespace

FINSER_BENCH_MAIN(report)
