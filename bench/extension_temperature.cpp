/// \file extension_temperature.cpp
/// \brief Temperature extension: critical charge and static noise margin
/// across the automotive junction-temperature range (−40 °C … +125 °C).
/// The compact model scales the thermal voltage, applies the threshold
/// tempco (|Vt| drops ~0.7 mV/K) and the phonon mobility law (kp·(300/T)^1.5).
/// Expected and reproduced: hot cells have weaker restoring drive *and*
/// lower Vt — the critical charge falls with temperature, compounding with
/// the low-Vdd SER penalty the paper reports. Micro-benchmark: model
/// evaluation with temperature scaling.

#include "bench_common.hpp"
#include "finser/sram/characterize.hpp"
#include "finser/sram/snm.hpp"

namespace {

using namespace finser;

void report() {
  util::CsvTable t({"temp_c", "qcrit_fc_vdd0.7", "qcrit_fc_vdd1.1",
                    "hold_snm_mv_vdd0.8", "ion_ua_vdd0.8"});
  for (double temp_c : {-40.0, 0.0, 27.0, 85.0, 125.0}) {
    sram::CellDesign design;
    design.temp_k = temp_c + 273.15;

    auto qcrit = [&](double vdd) {
      sram::StrikeSimulator sim(design, vdd);
      return sram::bisect_critical_scale(sim, sram::StrikeCharges{1, 0, 0},
                                         sram::DeltaVt{}, 0.6, 1e-4,
                                         spice::PulseShape::Kind::kRectangular);
    };
    const auto snm = sram::static_noise_margin(design, 0.8);
    const auto on = spice::evaluate_finfet(spice::default_nfet(), 0.8, 0.8, 0.0,
                                           0.0, 1.0, design.temp_k);
    t.add_row({temp_c, qcrit(0.7), qcrit(1.1), 1e3 * snm.snm_v,
               1e6 * on.ids});
  }
  bench::emit(t, "extension_temperature",
              "Temperature extension: Qcrit, SNM and drive vs junction temp");
}

void bm_finfet_eval_hot(benchmark::State& state) {
  double vg = 0.0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(spice::evaluate_finfet(spice::default_nfet(), 0.8,
                                                    vg, 0.0, 0.0, 1.0, 398.15));
    vg = vg < 0.8 ? vg + 1e-3 : 0.0;
  }
}
BENCHMARK(bm_finfet_eval_hot);

}  // namespace

FINSER_BENCH_MAIN(report)
