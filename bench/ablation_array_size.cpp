/// \file ablation_array_size.cpp
/// \brief Probes the paper's Sec.-6 claim that a 9×9 array "is large enough
/// to obtain a realistic ratio for MBU vs. SEU": sweeps the array from 3×3
/// to 13×13 at a fixed alpha energy. In finser the per-step growth of the
/// MBU/SEU ratio decelerates sharply around 9×9 but does not fully saturate
/// — near-horizontal tracks stay inside the 26 nm fin layer across many
/// cell pitches, so ever-larger arrays keep capturing longer multi-cell
/// chords (see EXPERIMENTS.md for the discussion). Micro-benchmark: layout
/// construction and accelerated ray queries.

#include "bench_common.hpp"
#include "finser/geom/box_set.hpp"
#include "finser/stats/direction.hpp"

namespace {

using namespace finser;

void report() {
  core::SerFlowConfig base = bench::paper_flow_config();

  util::CsvTable t({"array_size", "cells", "pof_tot", "pof_seu", "pof_mbu",
                    "mbu_seu_pct", "pof_tot_per_cell"});
  for (std::size_t n : {3u, 5u, 7u, 9u, 11u, 13u}) {
    core::SerFlowConfig cfg = base;
    cfg.array_rows = n;
    cfg.array_cols = n;
    // One shared LUT cache works for every size (cell model is identical).
    core::SerFlow flow(cfg);
    const auto res = flow.run_at_energy(phys::Species::kAlpha, 2.0);
    // Vdd = 0.7 V, with process variation.
    const auto& e = res.est[0][core::kModeWithPv];
    t.add_row({static_cast<double>(n), static_cast<double>(n * n), e.tot, e.seu,
               e.mbu, e.seu > 0.0 ? 100.0 * e.mbu / e.seu : 0.0,
               e.tot / static_cast<double>(n * n)});
  }
  bench::emit(t, "ablation_array_size",
              "Sec. 6 claim: MBU/SEU ratio vs array size (alpha, 2 MeV, 0.7 V)");
}

void bm_layout_build(benchmark::State& state) {
  for (auto _ : state) {
    sram::ArrayLayout layout(9, 9, sram::CellGeometry{});
    benchmark::DoNotOptimize(layout.fins().size());
  }
}
BENCHMARK(bm_layout_build)->Unit(benchmark::kMicrosecond);

void bm_grid_query(benchmark::State& state) {
  const sram::ArrayLayout layout(9, 9, sram::CellGeometry{});
  geom::UniformGrid grid(layout.fins());
  stats::Rng rng(5);
  std::vector<geom::BoxHit> hits;
  for (auto _ : state) {
    geom::Ray ray;
    ray.origin = {rng.uniform(0.0, layout.width_nm()),
                  rng.uniform(0.0, layout.height_nm()), 60.0};
    ray.dir = stats::isotropic_hemisphere_down(rng);
    grid.query(ray, hits);
    benchmark::DoNotOptimize(hits.size());
  }
}
BENCHMARK(bm_grid_query);

void bm_brute_query(benchmark::State& state) {
  const sram::ArrayLayout layout(9, 9, sram::CellGeometry{});
  stats::Rng rng(5);
  std::vector<geom::BoxHit> hits;
  for (auto _ : state) {
    geom::Ray ray;
    ray.origin = {rng.uniform(0.0, layout.width_nm()),
                  rng.uniform(0.0, layout.height_nm()), 60.0};
    ray.dir = stats::isotropic_hemisphere_down(rng);
    layout.fins().query(ray, hits);
    benchmark::DoNotOptimize(hits.size());
  }
}
BENCHMARK(bm_brute_query);

}  // namespace

FINSER_BENCH_MAIN(report)
