/// \file fig10_mbu_seu.cpp
/// \brief Reproduces paper Fig. 10: the MBU/SEU ratio (%) of the 9×9 array
/// versus supply voltage for proton and alpha radiation. The headline: the
/// alpha ratio is several times the proton ratio, and the proton ratio
/// decreases with Vdd. Micro-benchmark: the Eqs. 4-6 combination kernel
/// through a full array-MC energy point.

#include "bench_common.hpp"

namespace {

using namespace finser;

void report() {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  core::SerFlow flow(cfg);
  flow.cell_model(bench::progress_printer());

  const auto rp = flow.sweep(env::sea_level_protons(), bench::progress_printer());
  const auto ra = flow.sweep(env::package_alphas(), bench::progress_printer());

  util::CsvTable t({"vdd_v", "proton_mbu_seu_pct", "alpha_mbu_seu_pct",
                    "proton_fit_seu", "proton_fit_mbu", "alpha_fit_seu",
                    "alpha_fit_mbu"});
  for (std::size_t v = 0; v < rp.vdds.size(); ++v) {
    const auto& fp = rp.fit[v][core::kModeWithPv];
    const auto& fa = ra.fit[v][core::kModeWithPv];
    t.add_row({rp.vdds[v],
               fp.fit_seu > 0.0 ? 100.0 * fp.fit_mbu / fp.fit_seu : 0.0,
               fa.fit_seu > 0.0 ? 100.0 * fa.fit_mbu / fa.fit_seu : 0.0,
               fp.fit_seu, fp.fit_mbu, fa.fit_seu, fa.fit_mbu});
  }
  bench::emit(t, "fig10_mbu_vs_seu", "Fig. 10: MBU/SEU ratio (%) vs Vdd");
}

void bm_energy_point(benchmark::State& state) {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  core::SerFlow flow(cfg);
  const auto& model = flow.cell_model();
  core::ArrayMcConfig mc_cfg = cfg.array_mc;
  mc_cfg.strikes = 1000;
  core::ArrayMc mc(flow.layout(), model, mc_cfg);
  std::uint64_t seed = 9;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.run(phys::Species::kProton, 0.3, seed++));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(bm_energy_point)->Unit(benchmark::kMillisecond);

}  // namespace

FINSER_BENCH_MAIN(report)
