/// \file fig4_ehpairs.cpp
/// \brief Reproduces paper Fig. 4: the normalized mean number of electrons
/// generated in a single fin by alpha-particle and proton strikes versus
/// particle energy (the "Geant4 LUT" of the paper's device level, here
/// produced by finser's analytic-stopping-power Monte Carlo).
/// Micro-benchmarks: single-strike simulation and stopping-power kernels.

#include <cmath>

#include "bench_common.hpp"
#include "finser/phys/collection.hpp"
#include "finser/phys/fin_mc.hpp"
#include "finser/phys/stopping.hpp"

namespace {

using namespace finser;

geom::Aabb paper_fin() {
  const phys::FinTechnology tech;
  return geom::Aabb{{0.0, 0.0, 0.0},
                    {tech.w_fin_nm, tech.l_fin_nm, tech.h_fin_nm}};
}

void report() {
  phys::FinStrikeMc::Config cfg;
  cfg.samples = static_cast<std::size_t>(20000 * core::mc_scale_from_env());
  const phys::FinStrikeMc mc(paper_fin(), cfg);
  stats::Rng rng(42);

  // Paper Fig. 4 x-range: 0.1 to 100 MeV on a log axis.
  std::vector<double> energies;
  for (double e = 0.1; e <= 100.01; e *= std::pow(10.0, 0.25)) {
    energies.push_back(e);
  }

  std::vector<double> alpha_pairs, proton_pairs, alpha_se, proton_se;
  for (double e : energies) {
    const auto a = mc.run(phys::Species::kAlpha, e, rng);
    const auto p = mc.run(phys::Species::kProton, e, rng);
    alpha_pairs.push_back(a.mean_eh_pairs);
    proton_pairs.push_back(p.mean_eh_pairs);
    alpha_se.push_back(a.stderr_eh_pairs);
    proton_se.push_back(p.stderr_eh_pairs);
  }

  // The paper normalizes; normalize both curves by the same (alpha) maximum
  // so their ratio — the headline of Fig. 4 — is preserved.
  double norm = 0.0;
  for (double v : alpha_pairs) norm = std::max(norm, v);

  util::CsvTable t({"energy_mev", "alpha_pairs_norm", "proton_pairs_norm",
                    "alpha_pairs", "proton_pairs", "alpha_se", "proton_se",
                    "alpha_over_proton"});
  for (std::size_t i = 0; i < energies.size(); ++i) {
    t.add_row({energies[i], alpha_pairs[i] / norm, proton_pairs[i] / norm,
               alpha_pairs[i], proton_pairs[i], alpha_se[i], proton_se[i],
               proton_pairs[i] > 0.0 ? alpha_pairs[i] / proton_pairs[i] : 0.0});
  }
  bench::emit(t, "fig4_ehpairs",
              "Fig. 4: mean e-h pairs in one fin vs energy (normalized)");
}

void bm_fin_strike(benchmark::State& state) {
  phys::FinStrikeMc::Config cfg;
  cfg.samples = 1000;
  const phys::FinStrikeMc mc(paper_fin(), cfg);
  stats::Rng rng(7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.run(phys::Species::kAlpha, 1.0, rng));
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(bm_fin_strike);

void bm_stopping_power(benchmark::State& state) {
  double e = 0.1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        phys::electronic_stopping(phys::Species::kAlpha, e, phys::silicon()));
    e = e < 100.0 ? e * 1.01 : 0.1;
  }
}
BENCHMARK(bm_stopping_power);

void bm_csda_loss(benchmark::State& state) {
  for (auto _ : state) {
    benchmark::DoNotOptimize(phys::csda_energy_loss(phys::Species::kProton, 0.5,
                                                    26.0, phys::silicon()));
  }
}
BENCHMARK(bm_csda_loss);

}  // namespace

FINSER_BENCH_MAIN(report)
