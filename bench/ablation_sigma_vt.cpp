/// \file ablation_sigma_vt.cpp
/// \brief Design-space ablation behind Fig. 11: how the "neglecting process
/// variation underestimates SER" gap scales with the threshold-variation
/// sigma. The paper reports up to 45 % at its (IBM-internal) variability
/// level; finser's default sigma_Vt = 50 mV yields a smaller but same-sign
/// gap, and this sweep shows the gap growing superlinearly with sigma —
/// supporting the paper's conclusion that variability cannot be neglected
/// for aggressive technology corners.
/// Micro-benchmark: per-sample critical-charge bisection cost.

#include "bench_common.hpp"
#include "finser/sram/characterize.hpp"

namespace {

using namespace finser;

void report() {
  const double scale = core::mc_scale_from_env();

  util::CsvTable t({"sigma_vt_mv", "ser_with_pv", "ser_no_pv",
                    "underestimation_pct"});
  for (double sigma_mv : {0.0, 20.0, 40.0, 60.0, 80.0, 120.0}) {
    core::SerFlowConfig cfg;
    cfg.array_rows = 5;
    cfg.array_cols = 5;
    cfg.cell_design.sigma_vt = sigma_mv * 1e-3;
    cfg.characterization.vdds = {0.8};
    cfg.characterization.pv_samples_single =
        static_cast<std::size_t>(300 * scale);
    cfg.characterization.pv_samples_grid = static_cast<std::size_t>(48 * scale);
    cfg.array_mc.strikes = static_cast<std::size_t>(80000 * scale);
    cfg.alpha_bins = 8;
    cfg.seed = 5150;
    core::SerFlow flow(cfg);
    const auto ra = flow.sweep(env::package_alphas());
    const double with_pv = ra.fit[0][core::kModeWithPv].fit_tot;
    const double no_pv = ra.fit[0][core::kModeNominal].fit_tot;
    t.add_row({sigma_mv, with_pv, no_pv,
               no_pv > 0.0 ? 100.0 * (with_pv - no_pv) / no_pv : 0.0});
  }
  bench::emit(t, "ablation_sigma_vt",
              "Fig. 11 ablation: PV underestimation vs sigma_Vt (alpha, 0.8 V)");
}

void bm_qcrit_bisection(benchmark::State& state) {
  sram::StrikeSimulator sim(sram::CellDesign{}, 0.8);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sram::bisect_critical_scale(
        sim, sram::StrikeCharges{1, 0, 0}, sram::DeltaVt{}, 0.4, 2e-4,
        spice::PulseShape::Kind::kRectangular));
  }
}
BENCHMARK(bm_qcrit_bisection)->Unit(benchmark::kMillisecond);

}  // namespace

FINSER_BENCH_MAIN(report)
