/// \file fig8_pof_energy.cpp
/// \brief Reproduces paper Fig. 8: the normalized POF of the 9×9 SRAM array
/// versus particle energy for protons and alphas at Vdd = 0.7 V and 0.8 V
/// (process variation considered). Micro-benchmark: array-MC strike
/// throughput.

#include "bench_common.hpp"

namespace {

using namespace finser;

void report() {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  core::SerFlow flow(cfg);
  flow.cell_model(bench::progress_printer());

  // Fig. 8 energy grid: 0.1-100 MeV for both species (alphas only emitted
  // below 10 MeV terrestrially, but the figure sweeps the full axis).
  std::vector<double> energies;
  for (double e = 0.1; e <= 100.01; e *= std::pow(10.0, 1.0 / 3.0)) {
    energies.push_back(e);
  }

  const std::vector<double>& vdds = flow.cell_model().vdds();
  std::size_t v07 = 0, v08 = 1;
  for (std::size_t i = 0; i < vdds.size(); ++i) {
    if (std::abs(vdds[i] - 0.7) < 1e-6) v07 = i;
    if (std::abs(vdds[i] - 0.8) < 1e-6) v08 = i;
  }

  std::vector<double> p07, p08, a07, a08;
  for (double e : energies) {
    const auto rp = flow.run_at_energy(phys::Species::kProton, e);
    const auto ra = flow.run_at_energy(phys::Species::kAlpha, e);
    p07.push_back(rp.est[v07][core::kModeWithPv].tot);
    p08.push_back(rp.est[v08][core::kModeWithPv].tot);
    a07.push_back(ra.est[v07][core::kModeWithPv].tot);
    a08.push_back(ra.est[v08][core::kModeWithPv].tot);
  }

  // Normalize everything by the overall maximum (alpha at 0.7 V) so the
  // proton-vs-alpha separation of the paper's figure is preserved.
  double norm = 0.0;
  for (const auto* s : {&p07, &p08, &a07, &a08}) {
    for (double v : *s) norm = std::max(norm, v);
  }
  if (norm == 0.0) norm = 1.0;

  util::CsvTable t({"energy_mev", "proton_vdd0.7", "proton_vdd0.8",
                    "alpha_vdd0.7", "alpha_vdd0.8"});
  for (std::size_t i = 0; i < energies.size(); ++i) {
    t.add_row({energies[i], p07[i] / norm, p08[i] / norm, a07[i] / norm,
               a08[i] / norm});
  }
  bench::emit(t, "fig8_pof_vs_energy",
              "Fig. 8: normalized array POF vs particle energy");
}

void bm_array_mc_strikes(benchmark::State& state) {
  core::SerFlowConfig cfg = bench::paper_flow_config();
  core::SerFlow flow(cfg);
  const auto& model = flow.cell_model();
  core::ArrayMcConfig mc_cfg = cfg.array_mc;
  mc_cfg.strikes = 2000;
  core::ArrayMc mc(flow.layout(), model, mc_cfg);
  std::uint64_t seed = 3;
  for (auto _ : state) {
    benchmark::DoNotOptimize(mc.run(phys::Species::kAlpha, 2.0, seed++));
  }
  state.SetItemsProcessed(state.iterations() * 2000);
}
BENCHMARK(bm_array_mc_strikes)->Unit(benchmark::kMillisecond);

}  // namespace

FINSER_BENCH_MAIN(report)
